"""Tests for the heap-indexed dispatch kernel (`repro.core.dispatch`).

Three layers of evidence that the kernel reproduces the naive
select-and-scan baselines exactly:

* **Structure properties** — ``earliest_free_start`` (and its indexed
  sibling :meth:`ClassBusy.earliest_free`) pinned against brute-force
  references, on integer ticks and on :class:`~fractions.Fraction`
  endpoints, including touching/adjacent busy intervals;
  :class:`MachineFrontier` pinned against a naive list scan.
* **Whole-algorithm equivalence** — hypothesis drives random instances
  through the kernel-backed ``class_greedy`` / ``list_*`` / ``merge_lpt``
  and through the preserved pre-kernel loops in
  :mod:`repro.algorithms.reference`, asserting identical ``to_dict``
  output (the same technique as ``tests/core/test_tick_equivalence.py``).
* **Step counts** — the kernel's built-in work counters (the counting
  shim) bound the dispatch work to near-linear, so a reintroduced
  ``remove()``/re-sort hot loop fails loudly instead of just slowly.
"""

from __future__ import annotations

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import solve
from repro.algorithms.list_scheduling import PRIORITY_RULES
from repro.algorithms.reference import (
    APPROX_REFERENCES,
    NAIVE_REFERENCES,
    naive_class_greedy,
    naive_list,
)
from repro.core.dispatch import (
    BlockDispatchState,
    ClassBusy,
    ClassReservations,
    ClassSelectionHeap,
    DispatchState,
    MachineFrontier,
    earliest_free_start,
)
from repro.core.errors import CapacityError, InvalidScheduleError
from repro.core.instance import Instance, Job
from repro.core.machine import MachinePool, MachineState
from repro.workloads import (
    generate,
    mh_stress_machines,
    packed_small_machines,
)
from tests.equivalence import (
    assert_matches_reference,
    golden_cell_id,
    golden_cells,
    kernel_counters,
    replay_golden_cell,
)
from tests.strategies import instances


# --------------------------------------------------------------------- #
# earliest_free_start vs brute force
# --------------------------------------------------------------------- #
def brute_force_tick_scan(busy, ready: int, size: int) -> int:
    """Reference: try every integer tick from ``ready`` upward."""
    t = ready
    while not all(hi <= t or lo >= t + size for lo, hi in busy):
        t += 1
    return t


def brute_force_candidates(busy, ready, size):
    """Reference for rational endpoints: the earliest feasible start is
    ``ready`` itself or some interval end — minimize over those."""
    candidates = [ready] + [hi for _, hi in busy if hi > ready]
    return min(
        t
        for t in candidates
        if all(hi <= t or lo >= t + size for lo, hi in busy)
    )


@st.composite
def busy_intervals(draw, *, denominator: int = 1, max_intervals: int = 6):
    """Sorted, disjoint, possibly *touching* busy intervals."""
    intervals = []
    cursor = 0
    for _ in range(draw(st.integers(0, max_intervals))):
        cursor += draw(st.integers(0, 5))  # gap 0 → touching neighbors
        length = draw(st.integers(1, 6))
        intervals.append((cursor, cursor + length))
        cursor += length
    if denominator == 1:
        return intervals
    return [
        (Fraction(lo, denominator), Fraction(hi, denominator))
        for lo, hi in intervals
    ]


class TestEarliestFreeStart:
    @given(
        busy=busy_intervals(),
        ready=st.integers(0, 30),
        size=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_tick_scan(self, busy, ready, size):
        assert earliest_free_start(busy, ready, size) == (
            brute_force_tick_scan(busy, ready, size)
        )

    @given(
        den=st.integers(1, 5),
        data=st.data(),
        ready_num=st.integers(0, 60),
        size=st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_on_fractions(
        self, den, data, ready_num, size
    ):
        busy = data.draw(busy_intervals(denominator=den))
        ready = Fraction(ready_num, den)
        got = earliest_free_start(busy, ready, size)
        assert got == brute_force_candidates(busy, ready, size)
        # The returned slot really is free and no earlier than ready.
        assert got >= ready
        assert all(hi <= got or lo >= got + size for lo, hi in busy)

    def test_touching_intervals_have_no_gap(self):
        # [0,2) and [2,4) touch: a unit job ready at 0 must go to 4.
        busy = [(0, 2), (2, 4)]
        assert earliest_free_start(busy, 0, 1) == 4

    def test_exact_fit_between_touching_runs(self):
        busy = [(0, 2), (3, 5), (5, 7)]
        assert earliest_free_start(busy, 0, 1) == 2  # exact-fit gap
        assert earliest_free_start(busy, 0, 2) == 7  # gap too small
        assert earliest_free_start(busy, 2, 1) == 2  # ready on a boundary

    def test_ready_at_interval_end_is_free(self):
        busy = [(Fraction(1, 2), Fraction(5, 2))]
        assert earliest_free_start(busy, Fraction(5, 2), 3) == Fraction(5, 2)

    def test_slot_ending_exactly_at_next_start(self):
        busy = [(4, 9)]
        assert earliest_free_start(busy, 1, 3) == 1  # [1,4) touches [4,9)

    def test_class_greedy_reexport_is_the_kernel_function(self):
        from repro.algorithms.class_greedy import earliest_class_free_start

        assert earliest_class_free_start is earliest_free_start


class TestClassBusy:
    @given(
        busy=busy_intervals(max_intervals=8),
        queries=st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 8)),
            min_size=1,
            max_size=5,
        ),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_generic_function(self, busy, queries, order_seed):
        index = ClassBusy()
        shuffled = list(busy)
        order_seed.shuffle(shuffled)  # insertion order must not matter
        for lo, hi in shuffled:
            index.insert(lo, hi)
        for ready, size in queries:
            assert index.earliest_free(ready, size) == (
                earliest_free_start(busy, ready, size)
            )

    @given(busy=busy_intervals(max_intervals=8))
    @settings(max_examples=100, deadline=None)
    def test_coalesced_sorted_disjoint(self, busy):
        index = ClassBusy()
        for lo, hi in busy:
            index.insert(lo, hi)
        intervals = index.intervals()
        # Sorted, disjoint, and *maximal*: touching runs were coalesced.
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 < lo2
        assert sum(hi - lo for lo, hi in intervals) == (
            sum(hi - lo for lo, hi in busy)
        )

    def test_coalesces_both_neighbors(self):
        index = ClassBusy()
        index.insert(0, 2)
        index.insert(4, 6)
        index.insert(2, 4)  # bridges both
        assert index.intervals() == [(0, 6)]
        assert index.earliest_free(0, 1) == 6

    @given(
        busy=busy_intervals(max_intervals=8),
        limit=st.integers(0, 50),
    )
    @settings(max_examples=150, deadline=None)
    def test_gaps_complement_busy_runs(self, busy, limit):
        index = ClassBusy()
        for lo, hi in busy:
            index.insert(lo, hi)
        gaps = list(index.gaps(limit))
        # In order, disjoint, non-empty, clipped to the horizon.
        for lo, hi in gaps:
            assert 0 <= lo < hi <= limit
        for (_, hi1), (lo2, _) in zip(gaps, gaps[1:]):
            assert hi1 < lo2
        # Exact complement on [0, limit): each tick is free XOR busy.
        free = {t for lo, hi in gaps for t in range(lo, hi)}
        occupied = {
            t
            for lo, hi in index.intervals()
            for t in range(lo, hi)
            if t < limit
        }
        assert free | occupied == set(range(limit))
        assert not (free & occupied)

    def test_gaps_empty_index_is_one_run(self):
        index = ClassBusy()
        assert list(index.gaps(5)) == [(0, 5)]
        assert list(index.gaps(0)) == []


# --------------------------------------------------------------------- #
# MachineFrontier vs a naive scan
# --------------------------------------------------------------------- #
class TestMachineFrontier:
    @given(
        m=st.integers(1, 9),
        ops=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 50)),
            max_size=30,
        ),
        probes=st.lists(st.integers(0, 60), min_size=1, max_size=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_naive_scan(self, m, ops, probes):
        frontier = MachineFrontier(m)
        tops = [0] * m
        for idx, top in ops:
            idx %= m
            # Frontiers only move forward in the dispatch loop, but the
            # structure itself must not care.
            frontier.update(idx, top)
            tops[idx] = top
        assert frontier.min_top() == min(tops)
        for i in range(m):
            assert frontier.top(i) == tops[i]
        for x in probes:
            expected = next(
                (i for i, t in enumerate(tops) if t <= x), -1
            )
            assert frontier.leftmost_at_most(x) == expected

    def test_leftmost_prefers_smaller_index_on_ties(self):
        frontier = MachineFrontier(5, tops=[7, 3, 3, 9, 3])
        assert frontier.min_top() == 3
        assert frontier.leftmost_at_most(3) == 1
        assert frontier.leftmost_at_most(8) == 0
        assert frontier.leftmost_at_most(2) == -1

    @given(
        m=st.integers(1, 9),
        ops=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 50)),
            max_size=30,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_leftmost_min_matches_naive_argmin(self, m, ops):
        frontier = MachineFrontier(m)
        tops = [0] * m
        for idx, top in ops:
            idx %= m
            frontier.update(idx, top)
            tops[idx] = top
        assert frontier.leftmost_min() == min(
            range(m), key=tops.__getitem__
        )

    def test_leftmost_min_ties_and_updates(self):
        frontier = MachineFrontier(5, tops=[7, 3, 3, 9, 3])
        assert frontier.leftmost_min() == 1
        frontier.update(1, 8)
        assert frontier.leftmost_min() == 2
        frontier.update(4, 0)
        assert frontier.leftmost_min() == 4


class TestMachineFrontierClosedMachines:
    """Closed-machine (deactivation) support — the subset-query layer the
    3/2-approximation's ``M̄H`` bookkeeping runs on."""

    @given(
        m=st.integers(1, 9),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["update", "close"]),
                st.integers(0, 8),
                st.integers(0, 50),
            ),
            max_size=30,
        ),
        probes=st.lists(st.integers(0, 60), min_size=1, max_size=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_naive_open_list_scan(self, m, ops, probes):
        frontier = MachineFrontier(m)
        tops = [0] * m
        open_ = [True] * m
        for kind, idx, top in ops:
            idx %= m
            if kind == "close" or not open_[idx]:
                frontier.deactivate(idx)
                open_[idx] = False
            else:
                frontier.update(idx, top)
                tops[idx] = top
        assert frontier.active_count == sum(open_)
        active = [i for i in range(m) if open_[i]]
        assert frontier.leftmost_active() == (active[0] if active else -1)
        if active:
            assert frontier.min_top() == min(tops[i] for i in active)
        for i in range(m):
            assert frontier.is_active(i) == open_[i]
        for x in probes:
            expected = next(
                (i for i in active if tops[i] <= x), -1
            )
            assert frontier.leftmost_at_most(x) == expected

    def test_deactivate_is_idempotent_and_counts(self):
        frontier = MachineFrontier(4, tops=[5, 1, 7, 3])
        frontier.deactivate(1)
        frontier.deactivate(1)
        assert frontier.active_count == 3
        assert frontier.min_top() == 3
        assert frontier.leftmost_at_most(6) == 0
        assert frontier.leftmost_active() == 0

    def test_update_on_deactivated_leaf_raises(self):
        frontier = MachineFrontier(3, tops=[2, 4, 6])
        frontier.deactivate(0)
        with pytest.raises(InvalidScheduleError):
            frontier.update(0, 1)
        # The failed update must not have resurrected the leaf.
        assert frontier.leftmost_active() == 1

    def test_all_deactivated(self):
        frontier = MachineFrontier(3)
        for i in range(3):
            frontier.deactivate(i)
        assert frontier.active_count == 0
        assert frontier.leftmost_active() == -1
        assert frontier.leftmost_at_most(10**9) == -1

    def test_subset_frontier_orders_by_leaf_not_machine_index(self):
        # A frontier over a machine *subset* uses list positions as
        # leaves: leftmost means first in subset order.
        subset_tops = [9, 2, 9, 2]  # e.g. M̄H machines in creation order
        frontier = MachineFrontier(len(subset_tops), tops=subset_tops)
        assert frontier.leftmost_at_most(2) == 1
        frontier.deactivate(1)
        assert frontier.leftmost_at_most(2) == 3
        frontier.deactivate(3)
        assert frontier.leftmost_at_most(2) == -1
        assert frontier.leftmost_active() == 0


class TestClassBusyReserve:
    """Block-level reservation — the conflict-scan path of the
    approximation algorithms' Lemma placements."""

    @given(
        busy=busy_intervals(max_intervals=8),
        start=st.integers(0, 40),
        length=st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_overlap(self, busy, start, length):
        index = ClassBusy()
        for lo, hi in busy:
            index.insert(lo, hi)
        end = start + length
        conflict = any(lo < end and start < hi for lo, hi in busy)
        if conflict:
            with pytest.raises(InvalidScheduleError):
                index.reserve(start, end)
            # Atomic: the busy set is unchanged on failure.
            assert sum(hi - lo for lo, hi in index.intervals()) == (
                sum(hi - lo for lo, hi in busy)
            )
        else:
            index.reserve(start, end)
            assert sum(hi - lo for lo, hi in index.intervals()) == (
                sum(hi - lo for lo, hi in busy) + length
            )

    def test_touching_reservations_are_legal_and_coalesce(self):
        index = ClassBusy()
        index.reserve(0, 3)
        index.reserve(3, 5)  # touching is not overlapping
        assert index.intervals() == [(0, 5)]
        assert index.first_start() == 0
        assert index.last_end() == 5

    def test_empty_or_reversed_reservation_raises(self):
        index = ClassBusy()
        with pytest.raises(InvalidScheduleError):
            index.reserve(4, 4)
        with pytest.raises(InvalidScheduleError):
            index.reserve(5, 2)

    def test_bounds_accessors_when_idle(self):
        index = ClassBusy()
        assert index.first_start() is None
        assert index.last_end() is None

    def test_reservations_map_creates_on_demand_and_counts(self):
        reservations = ClassReservations([1])
        reservations.reserve(1, 0, 4)
        reservations.reserve(2, 2, 6)  # class 2 created on demand
        reservations.reserve(3, 5, 5)  # empty block: no-op
        assert reservations.count == 2
        assert reservations.of(1).intervals() == [(0, 4)]
        assert reservations.of(2).intervals() == [(2, 6)]
        # Validation is deferred: the queue accepts the conflicting
        # interval, the batch scan rejects it at the next read/flush.
        reservations.reserve(2, 5, 7)
        with pytest.raises(InvalidScheduleError):
            reservations.of(2)

    def test_reservations_flush_rejects_conflicts_batchwise(self):
        reservations = ClassReservations()
        reservations.reserve(4, 0, 3)
        reservations.reserve(4, 3, 5)  # touching: legal, coalesces
        reservations.flush()
        assert reservations.of(4).intervals() == [(0, 5)]
        reservations.reserve(4, 4, 6)  # overlaps the committed run
        with pytest.raises(InvalidScheduleError):
            reservations.flush()

    def test_merge_reserve_matches_eager_reservation(self):
        import itertools
        import random

        rnd = random.Random(7)
        for _ in range(200):
            intervals = [
                (s, s + rnd.randint(1, 4))
                for s in rnd.sample(range(0, 40), rnd.randint(1, 8))
            ]
            eager = ClassBusy()
            eager_error = None
            try:
                for s, e in intervals:
                    eager.reserve(s, e)
            except InvalidScheduleError as exc:
                eager_error = type(exc)
            batched = ClassBusy()
            batch_error = None
            try:
                batched.merge_reserve(intervals)
            except InvalidScheduleError as exc:
                batch_error = type(exc)
            assert eager_error == batch_error, intervals
            if eager_error is None:
                assert eager.intervals() == batched.intervals(), intervals


class TestBlockDispatchState:
    """The load-keyed cursor engine `Algorithm_5/3` runs on."""

    @given(
        m=st.integers(1, 6),
        blocks=st.lists(
            st.tuples(st.integers(1, 9), st.booleans()),
            min_size=1,
            max_size=20,
        ),
        T=st.integers(3, 12),
    )
    @settings(max_examples=100, deadline=None)
    def test_current_light_matches_naive_walk(self, m, blocks, T):
        """Placing blocks on `current_light` mirrors a naive 'first open
        machine with load < T' scan, including closures."""
        pool = MachinePool(m)
        engine = BlockDispatchState(pool, range(len(blocks)), T)
        shadow_loads = [0] * m
        shadow_open = [True] * m
        for cid, (size, close_after) in enumerate(blocks):
            expected = next(
                (
                    i
                    for i in range(m)
                    if shadow_open[i] and shadow_loads[i] < T
                ),
                None,
            )
            if expected is None:
                with pytest.raises(CapacityError):
                    engine.current_light()
                break
            machine = engine.current_light()
            assert machine.index == expected
            engine.append_block(
                machine, cid, [Job(cid, size, cid)]
            )
            shadow_loads[expected] += size
            if close_after:
                engine.close(machine)
                shadow_open[expected] = False
        for i, machine in enumerate(pool.machines):
            assert machine.load == shadow_loads[i]
            assert machine.closed == (not shadow_open[i])

    def test_counters_surface_all_layers(self):
        pool = MachinePool(3)
        engine = BlockDispatchState(pool, [0, 1], 10)
        machine = engine.current_light()
        engine.place_block(machine, 0, [Job(0, 4, 0)], 0)
        engine.place_block_ending(machine, 1, [Job(1, 2, 1)], 8)
        counters = engine.counters()
        assert counters["placements"] == 2
        assert counters["reservations"] == 2
        assert counters["frontier_queries"] >= 1
        # Lazy frontier sync coalesces consecutive placements on the
        # same machine into one tree update (flushed by counters()).
        assert counters["frontier_updates"] >= 1


# --------------------------------------------------------------------- #
# Whole-algorithm equivalence with the preserved naive loops
# --------------------------------------------------------------------- #
def assert_same_result(kernel_result, naive_result):
    assert kernel_result.schedule.to_dict() == (
        naive_result.schedule.to_dict()
    )
    assert kernel_result.makespan == naive_result.makespan
    assert kernel_result.lower_bound == naive_result.lower_bound
    assert kernel_result.algorithm == naive_result.algorithm


class TestKernelVsNaive:
    @given(inst=instances())
    @settings(max_examples=80, deadline=None)
    def test_class_greedy(self, inst):
        assert_same_result(
            solve(inst, algorithm="class_greedy"), naive_class_greedy(inst)
        )

    @given(
        inst=instances(), rule=st.sampled_from(sorted(PRIORITY_RULES))
    )
    @settings(max_examples=80, deadline=None)
    def test_list_rules(self, inst, rule):
        assert_same_result(
            solve(inst, algorithm="list_lpt", rule=rule),
            naive_list(inst, rule=rule),
        )

    @pytest.mark.parametrize(
        "family,machines,size,seed",
        [
            ("uniform", 8, 150, 0),
            ("class_heavy", 4, 80, 1),
            ("greedy_trap", 3, 50, 2),
            ("two_per_class", 5, 120, 3),
        ],
    )
    def test_medium_instances_all_baselines(
        self, family, machines, size, seed
    ):
        inst = generate(family, machines, size, seed)
        for name, naive in NAIVE_REFERENCES.items():
            assert_same_result(solve(inst, algorithm=name), naive(inst))

    def test_dense_single_class(self):
        # One dominant class forces every placement through the busy
        # index; |C| > m so the optimal fast path stays off.
        inst = Instance.from_class_sizes(
            [[3] * 60, [2] * 5] + [[1]] * 4, 3
        )
        for name, naive in NAIVE_REFERENCES.items():
            assert_same_result(solve(inst, algorithm=name), naive(inst))


#: The approximation algorithms ported in PR 4 and their stress shapes
#: (family, machine-count rule) for the medium-n equivalence cells.
APPROX_ALGORITHMS = ("five_thirds", "three_halves", "no_huge")
APPROX_STRESS_CELLS = [
    ("mh_stress", mh_stress_machines, 250, 0),
    ("mh_stress", mh_stress_machines, 250, 5),
    ("packed_small", packed_small_machines, 60, 0),
    ("packed_small", packed_small_machines, 90, 3),
]


class TestApproxKernelVsReference:
    """The 5/3, 3/2 and no-huge kernel ports are decision-identical to
    the preserved pre-kernel loops (``tests/equivalence.py`` harness)."""

    @given(inst=instances())
    @settings(max_examples=60, deadline=None)
    def test_five_thirds(self, inst):
        assert_matches_reference(inst, "five_thirds")

    @given(inst=instances())
    @settings(max_examples=60, deadline=None)
    def test_three_halves(self, inst):
        assert_matches_reference(inst, "three_halves")

    @given(inst=instances())
    @settings(max_examples=60, deadline=None)
    def test_no_huge(self, inst):
        assert_matches_reference(inst, "no_huge")

    @pytest.mark.slow
    @given(inst=instances(max_machines=12, max_classes=16, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_all_approx_wide_corpus(self, inst):
        for algorithm in APPROX_ALGORITHMS:
            assert_matches_reference(inst, algorithm)

    @pytest.mark.parametrize(
        "family,machines_for,size,seed", APPROX_STRESS_CELLS
    )
    def test_stress_shapes_all_approx(
        self, family, machines_for, size, seed
    ):
        inst = generate(family, machines_for(size), size, seed)
        for algorithm in APPROX_ALGORITHMS:
            assert_matches_reference(inst, algorithm)


class TestApproxGoldens:
    """The preserved reference copies reproduce the pre-port goldens —
    proof the copies really are verbatim-equivalent, independently of
    the kernel implementations (which ``test_tick_equivalence`` pins)."""

    @pytest.mark.parametrize(
        "cell",
        golden_cells(APPROX_ALGORITHMS, min_jobs=48),
        ids=golden_cell_id,
    )
    def test_reference_reproduces_golden(self, cell):
        replay_golden_cell(
            cell, solver=APPROX_REFERENCES[cell["algorithm"]]
        )


class TestApproxStepCounts:
    """The ported placement cores do O(n·(log n + log m)) frontier work —
    a reintroduced per-iteration re-sort or machine-list walk fails
    loudly instead of just slowly."""

    def three_halves_counters(self, size: int) -> dict:
        inst = generate("mh_stress", mh_stress_machines(size), size, 0)
        result = solve(inst, algorithm="three_halves")
        counters = kernel_counters(result)
        counters["n"] = inst.num_jobs
        counters["frontier_ops"] = (
            counters["frontier_queries"] + counters["frontier_updates"]
        )
        return counters

    def test_three_halves_frontier_work_is_near_linear(self):
        from tests.equivalence import assert_subquadratic_growth

        small = self.three_halves_counters(150)
        large = self.three_halves_counters(600)
        for c in (small, large):
            # O(1) frontier operations and O(1) reservations per
            # placement; every placement lands at most once per job.
            assert c["frontier_ops"] <= 4 * c["n"]
            assert c["reservations"] <= c["placements"] <= c["n"]
            assert c["scan_steps"] <= 2 * c["n"]
        assert_subquadratic_growth(
            small,
            large,
            ["frontier_ops", "scan_steps", "placements"],
        )

    def test_five_thirds_frontier_work_is_near_linear(self):
        from tests.equivalence import assert_subquadratic_growth

        def counters_for(size):
            inst = generate("uniform", 8, size, 0)
            result = solve(inst, algorithm="five_thirds")
            counters = kernel_counters(result)
            counters["n"] = inst.num_jobs
            counters["frontier_ops"] = (
                counters["frontier_queries"] + counters["frontier_updates"]
            )
            return counters

        small, large = counters_for(300), counters_for(1200)
        for c in (small, large):
            assert c["frontier_ops"] <= 4 * c["n"]
            assert c["scan_steps"] <= 2 * c["n"]
        assert_subquadratic_growth(
            small, large, ["frontier_ops", "scan_steps"]
        )

    def test_no_huge_reservation_work_is_near_linear(self):
        from tests.equivalence import assert_subquadratic_growth

        def counters_for(size):
            inst = generate(
                "packed_small", packed_small_machines(size), size, 0
            )
            result = solve(inst, algorithm="no_huge")
            counters = kernel_counters(result)
            counters["n"] = inst.num_jobs
            return counters

        small, large = counters_for(60), counters_for(240)
        for c in (small, large):
            assert c["placements"] == c["n"]
            assert c["scan_steps"] <= 2 * c["n"]
        assert_subquadratic_growth(
            small, large, ["scan_steps", "reservations"]
        )


class TestSelectionHeap:
    @given(inst=instances())
    @settings(max_examples=80, deadline=None)
    def test_pop_order_matches_naive_max(self, inst):
        residual = dict(inst.class_sizes)
        unscheduled = list(inst.jobs)
        selection = ClassSelectionHeap(inst)
        while unscheduled:
            expected = max(
                unscheduled,
                key=lambda j: (residual[j.class_id], j.size, -j.id),
            )
            unscheduled.remove(expected)
            residual[expected.class_id] -= expected.size
            assert selection.pop() == expected
        assert selection.pop() is None


# --------------------------------------------------------------------- #
# Step-count regression (the counting shim)
# --------------------------------------------------------------------- #
class TestStepCounts:
    def counters_for(self, n_classes: int) -> dict:
        inst = generate("uniform", 8, n_classes, 0)
        result = solve(inst, algorithm="class_greedy")
        counters = dict(result.stats["dispatch"])
        counters["n"] = inst.num_jobs
        return counters

    def test_dispatch_work_is_near_linear(self):
        small = self.counters_for(300)
        large = self.counters_for(1200)
        for c in (small, large):
            # One selection-heap push per job at most (plus the initial
            # per-class entry, already ≤ one per job), zero stale pops in
            # the built-in flow, and a conflict scan that touches O(1)
            # coalesced runs per placement on this family.
            assert c["heap_pushes"] <= c["n"]
            assert c["stale_pops"] == 0
            assert c["scan_steps"] <= 4 * c["n"]
            assert c["busy_intervals"] <= c["n"]
        # Growth check: 4× the jobs must cost ≤ ~6× the scan work —
        # a quadratic regression would show ≥ 16×.
        assert large["n"] >= 3.5 * small["n"]
        assert large["scan_steps"] <= 6 * small["scan_steps"]

    def test_dense_class_busy_index_stays_coalesced(self):
        inst = Instance.from_class_sizes([[2] * 500] + [[1]] * 8, 8)
        result = solve(inst, algorithm="class_greedy")
        counters = result.stats["dispatch"]
        # 508 placements but only a handful of maximal busy runs.
        assert counters["busy_intervals"] <= 20
        assert counters["scan_steps"] <= 4 * inst.num_jobs


# --------------------------------------------------------------------- #
# The machine-layer frontier fast path
# --------------------------------------------------------------------- #
class TestAppendFastPath:
    def test_append_before_frontier_raises_atomically(self):
        machine = MachineState(0)
        machine.append_job_at_ticks(Job(0, 5, 0), 0)
        with pytest.raises(InvalidScheduleError):
            machine.append_job_at_ticks(Job(1, 2, 0), 3)
        with pytest.raises(InvalidScheduleError):
            machine.append_block_at_ticks([Job(2, 1, 0)], 4)
        assert [j.id for j in machine.jobs()] == [0]
        assert machine.load == 5

    def test_append_at_or_after_frontier(self):
        machine = MachineState(0)
        assert machine.append_job_at_ticks(Job(0, 2, 0), 1) == 3
        assert machine.append_block_at_ticks(
            [Job(1, 1, 0), Job(2, 2, 0)], 5
        ) == 8
        assert machine.top_ticks == 8
        assert machine.load == 5

    def test_closed_machine_rejects_appends(self):
        machine = MachineState(0)
        machine.close()
        with pytest.raises(CapacityError):
            machine.append_job_at_ticks(Job(0, 1, 0), 0)
        with pytest.raises(CapacityError):
            machine.append_block_at_ticks([Job(0, 1, 0)], 0)

    def test_dispatch_state_matches_pool_state(self):
        inst = generate("uniform", 4, 30, 5)
        pool = MachinePool(inst.num_machines)
        state = DispatchState(pool, inst.classes)
        for job in inst.jobs:
            state.place(job)
        for machine in pool.machines:
            assert state.frontier.top(machine.index) == machine.top_ticks
        assert sum(m.load for m in pool.machines) == inst.total_size
