"""Tests for the MSRS instance model."""

import pytest
from hypothesis import given

from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance, Job
from tests.strategies import instances


class TestJob:
    def test_basic_fields(self):
        job = Job(id=1, size=5, class_id=2)
        assert (job.id, job.size, job.class_id) == (1, 5, 2)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=0, size=0, class_id=0)

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=0, size=-3, class_id=0)

    def test_non_integer_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=0, size=1.5, class_id=0)

    def test_bool_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(id=0, size=True, class_id=0)

    def test_jobs_hashable_and_frozen(self):
        job = Job(id=0, size=1, class_id=0)
        assert hash(job) == hash(Job(id=0, size=1, class_id=0))
        with pytest.raises(AttributeError):
            job.size = 2  # type: ignore[misc]


class TestInstance:
    def test_from_class_sizes(self):
        inst = Instance.from_class_sizes([[3, 2], [4]], 2)
        assert inst.num_jobs == 3
        assert inst.num_classes == 2
        assert inst.num_machines == 2
        assert inst.total_size == 9

    def test_class_partition(self):
        inst = Instance.from_class_sizes([[3, 2], [4], [1, 1, 1]], 2)
        assert {cid: len(jobs) for cid, jobs in inst.classes.items()} == {
            0: 2,
            1: 1,
            2: 3,
        }
        assert inst.class_size(0) == 5
        assert inst.class_size(2) == 3

    def test_max_class_and_job_size(self):
        inst = Instance.from_class_sizes([[3, 2], [4], [1, 1, 1]], 2)
        assert inst.max_class_size == 5
        assert inst.max_job_size == 4

    def test_duplicate_job_ids_rejected(self):
        jobs = [Job(0, 1, 0), Job(0, 2, 1)]
        with pytest.raises(InvalidInstanceError):
            Instance(jobs, 1)

    def test_zero_machines_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([], 0)

    def test_non_int_machines_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([], 1.5)  # type: ignore[arg-type]

    def test_empty_instance_allowed(self):
        inst = Instance([], 3)
        assert inst.num_jobs == 0
        assert inst.total_size == 0
        assert inst.max_class_size == 0
        assert inst.max_job_size == 0

    def test_sizes_listing(self):
        inst = Instance.from_class_sizes([[3, 2], [4]], 2)
        assert sorted(inst.sizes()) == [2, 3, 4]

    def test_restrict_to_classes(self):
        inst = Instance.from_class_sizes([[3, 2], [4], [5]], 2)
        sub = inst.restrict_to_classes([0, 2])
        assert sub.num_jobs == 3
        assert set(sub.classes) == {0, 2}
        assert sub.num_machines == 2
        # job ids preserved
        assert {j.id for j in sub.jobs} <= {j.id for j in inst.jobs}

    def test_restrict_with_machine_override(self):
        inst = Instance.from_class_sizes([[3], [4]], 5)
        sub = inst.restrict_to_classes([1], num_machines=2)
        assert sub.num_machines == 2

    def test_serialization_roundtrip(self):
        inst = Instance.from_class_sizes(
            [[3, 2], [4]], 2, name="demo", class_labels={0: "red"}
        )
        back = Instance.from_dict(inst.to_dict())
        assert back == inst
        assert back.name == "demo"
        assert back.class_labels == {0: "red"}

    def test_equality_and_hash(self):
        a = Instance.from_class_sizes([[3]], 2)
        b = Instance.from_class_sizes([[3]], 2)
        c = Instance.from_class_sizes([[3]], 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    @given(instances())
    def test_class_sizes_sum_to_total(self, inst):
        assert (
            sum(inst.class_size(cid) for cid in inst.classes)
            == inst.total_size
        )

    @given(instances())
    def test_classes_partition_jobs(self, inst):
        ids = [j.id for members in inst.classes.values() for j in members]
        assert sorted(ids) == sorted(j.id for j in inst.jobs)
