"""Tests for the machine-state builder."""

from fractions import Fraction

import pytest

from repro.core.errors import CapacityError, InvalidScheduleError
from repro.core.instance import Job
from repro.core.machine import (
    MachinePool,
    MachineState,
    build_schedule,
    close_machine,
)


def _jobs(*sizes, class_id=0, start_id=0):
    return [
        Job(id=start_id + i, size=s, class_id=class_id)
        for i, s in enumerate(sizes)
    ]


class TestMachineState:
    def test_place_block_at(self):
        m = MachineState(0)
        end = m.place_block_at(_jobs(3, 2), 0)
        assert end == Fraction(5)
        assert m.load == 5
        assert m.top == Fraction(5)
        assert m.bottom == Fraction(0)

    def test_place_block_ending_at(self):
        m = MachineState(0)
        start = m.place_block_ending_at(_jobs(3, 2), Fraction(10))
        assert start == Fraction(5)
        assert m.top == Fraction(10)

    def test_append_block(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3), 0)
        m.append_block(_jobs(2, start_id=5))
        assert m.top == Fraction(5)

    def test_overlap_rejected(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3), 0)
        with pytest.raises(InvalidScheduleError):
            m.place_block_at(_jobs(3, start_id=5), 2)

    def test_touching_blocks_allowed(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3), 0)
        m.place_block_at(_jobs(3, start_id=5), 3)
        assert m.load == 6

    def test_negative_start_rejected(self):
        m = MachineState(0)
        with pytest.raises(InvalidScheduleError):
            m.place_block_at(_jobs(3), -1)

    def test_delay_to_start_at(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3, 2), 0)
        m.delay_to_start_at(Fraction(4))
        assert m.bottom == Fraction(4)
        assert m.top == Fraction(9)

    def test_delay_backwards_rejected(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3), 2)
        with pytest.raises(InvalidScheduleError):
            m.delay_to_start_at(1)

    def test_delay_empty_machine_noop(self):
        m = MachineState(0)
        m.delay_to_start_at(5)
        assert m.empty

    def test_shift_all_to_end_at(self):
        m = MachineState(0)
        m.place_block_at(_jobs(3), 0)
        m.place_block_at(_jobs(2, start_id=5), 5)
        m.shift_all_to_end_at(Fraction(12))
        assert m.top == Fraction(12)
        assert m.bottom == Fraction(7)  # contiguous block of load 5
        assert [j.id for j in m.jobs()] == [0, 5]  # order preserved

    def test_closed_machine_rejects_placements(self):
        m = MachineState(0)
        m.close()
        with pytest.raises(CapacityError):
            m.place_block_at(_jobs(1), 0)

    def test_gaps(self):
        m = MachineState(0)
        m.place_block_at(_jobs(2), 1)
        gaps = m.gaps(Fraction(6))
        assert gaps == [(Fraction(0), Fraction(1)), (Fraction(3), Fraction(6))]

    def test_empty_block_is_noop(self):
        m = MachineState(0)
        end = m.place_block_at([], 3)
        assert end == Fraction(3)
        assert m.empty

    def test_failed_block_placement_is_atomic(self):
        # Second block job collides with an existing job: nothing of the
        # block may remain placed (found by the stateful property test).
        m = MachineState(0)
        m.place_block_at(_jobs(1), 4)  # occupies [4, 5)
        with pytest.raises(InvalidScheduleError):
            m.place_block_at(_jobs(1, 1, start_id=5), 3)  # [3,4)+[4,5)
        assert m.load == 1
        assert [j.id for j in m.jobs()] == [0]


class TestMachinePool:
    def test_take_fresh_in_order(self):
        pool = MachinePool(3)
        assert pool.take_fresh().index == 0
        assert pool.take_fresh().index == 1
        assert pool.fresh_remaining() == 1

    def test_exhausted_pool_raises(self):
        pool = MachinePool(1)
        pool.take_fresh()
        with pytest.raises(CapacityError):
            pool.take_fresh()

    def test_remaining_fresh_list(self):
        pool = MachinePool(3)
        pool.take_fresh()
        remaining = pool.remaining_fresh()
        assert [m.index for m in remaining] == [1, 2]

    def test_open_machines_excludes_closed(self):
        pool = MachinePool(2)
        pool[0].close()
        assert [m.index for m in pool.open_machines()] == [1]

    def test_build_schedule(self):
        pool = MachinePool(2)
        pool[0].place_block_at(_jobs(3), 0)
        pool[1].place_block_at(_jobs(2, class_id=1, start_id=9), 1)
        sched = build_schedule(pool)
        assert len(sched) == 2
        assert sched.makespan == Fraction(3)


class TestCloseMachine:
    """The single closure path shared by the approximation cores."""

    def test_closes_and_deactivates_frontier_leaf(self):
        from repro.core.dispatch import MachineFrontier

        pool = MachinePool(3)
        frontier = MachineFrontier(3)
        close_machine(pool[1], frontier)
        assert pool[1].closed
        assert not frontier.is_active(1)
        assert frontier.active_count == 2

    def test_subset_frontier_uses_position_not_machine_index(self):
        from repro.core.dispatch import MachineFrontier

        pool = MachinePool(5)
        subset = [pool[3], pool[4]]  # leaf order != machine index
        frontier = MachineFrontier(2)
        close_machine(subset[1], frontier, position=1)
        assert pool[4].closed
        assert frontier.is_active(0)
        assert not frontier.is_active(1)

    def test_idempotent(self):
        from repro.core.dispatch import MachineFrontier

        pool = MachinePool(2)
        frontier = MachineFrontier(2)
        close_machine(pool[0], frontier)
        close_machine(pool[0], frontier)
        assert frontier.active_count == 1

    def test_without_frontier_just_closes(self):
        machine = MachineState(0)
        close_machine(machine)
        assert machine.closed
        with pytest.raises(CapacityError):
            machine.place_block_at(_jobs(1), 0)
