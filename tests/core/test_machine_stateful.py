"""Stateful property test for the machine builder.

The :class:`~repro.core.machine.MachineState` invariant — entries sorted,
pairwise disjoint, load consistent — must survive any interleaving of the
operations the paper's algorithms perform.  Hypothesis drives random
operation sequences and cross-checks against a naive model.
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Job
from repro.core.machine import MachineState


class MachineModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = MachineState(0)
        self.model = []  # list of (start, end, job_id)
        self.next_id = 0

    def _new_jobs(self, sizes):
        jobs = [
            Job(id=self.next_id + i, size=s, class_id=0)
            for i, s in enumerate(sizes)
        ]
        self.next_id += len(sizes)
        return jobs

    def _fits(self, start, total):
        end = start + total
        return all(e <= start or end <= s for s, e, _ in self.model)

    @rule(
        sizes=st.lists(st.integers(1, 5), min_size=1, max_size=3),
        start=st.integers(0, 40),
    )
    def place_block(self, sizes, start):
        jobs = self._new_jobs(sizes)
        total = sum(sizes)
        try:
            self.machine.place_block_at(jobs, Fraction(start))
        except InvalidScheduleError:
            assert not self._fits(Fraction(start), total)
            return
        assert self._fits(Fraction(start), total)
        cursor = Fraction(start)
        for job in jobs:
            self.model.append((cursor, cursor + job.size, job.id))
            cursor += job.size

    @rule(sizes=st.lists(st.integers(1, 5), min_size=1, max_size=2))
    def append_block(self, sizes):
        jobs = self._new_jobs(sizes)
        start = self.machine.top
        self.machine.append_block(jobs)
        cursor = start
        for job in jobs:
            self.model.append((cursor, cursor + job.size, job.id))
            cursor += job.size

    @precondition(lambda self: self.model)
    @rule(extra=st.integers(0, 10))
    def shift_to_end(self, extra):
        end = self.machine.top + extra
        order = [jid for _, _, jid in sorted(self.model)]
        sizes = {jid: e - s for s, e, jid in self.model}
        self.machine.shift_all_to_end_at(end)
        cursor = end - sum(sizes.values())
        self.model = []
        for jid in order:
            self.model.append((cursor, cursor + sizes[jid], jid))
            cursor += sizes[jid]

    @precondition(lambda self: self.model)
    @rule(delta=st.integers(0, 10))
    def delay(self, delta):
        bottom = min(s for s, _, _ in self.model)
        self.machine.delay_to_start_at(bottom + delta)
        self.model = [
            (s + delta, e + delta, jid) for s, e, jid in self.model
        ]

    @invariant()
    def load_matches(self):
        assert self.machine.load == sum(e - s for s, e, _ in self.model)

    @invariant()
    def entries_match_model(self):
        entries = self.machine.entries()
        got = sorted((start, start + job.size, job.id) for job, start in entries)
        assert got == sorted(self.model)

    @invariant()
    def entries_disjoint_and_sorted(self):
        entries = self.machine.entries()
        for (j1, s1), (j2, s2) in zip(entries, entries[1:]):
            assert s1 + j1.size <= s2

    @invariant()
    def top_is_max_end(self):
        expected = max((e for _, e, _ in self.model), default=Fraction(0))
        assert self.machine.top == expected


MachineModelTest = MachineModel.TestCase
MachineModelTest.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
