"""Pins the stdlib PCG64 port word-for-word against numpy.

Two layers of defense: the C++ seed-sequence reference vectors (from the
upstream gist numpy itself tests against) hold even when numpy is absent,
and whenever numpy *is* importable every Generator method the repo uses is
differentially tested against the real stream — including the buffered
32-bit word that couples ``integers``/``shuffle`` draws.
"""

from __future__ import annotations

import pytest

from repro.util._pcg64 import (
    StdlibGenerator,
    StdlibPCG64,
    StdlibSeedSequence,
    stdlib_default_rng,
)
from repro.util.rng import HAVE_NUMPY, make_rng

if HAVE_NUMPY:
    import numpy as np

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

# C++ seed_seq_fe reference data (same vectors numpy's
# test_seed_sequence.py checks: gist.github.com/imneme/540829265469e673d045).
SEED_SEQ_INPUTS = [
    [3735928559, 195939070, 229505742, 305419896],
    [3668361503, 4165561550, 1661411377, 3634257570],
    [164546577, 4166754639, 1765190214, 1303880213],
    [446610472, 3941463886, 522937693, 1882353782],
]
SEED_SEQ_OUTPUTS = [
    [3914649087, 576849849, 3593928901, 2229911004],
    [2240804226, 3691353228, 1365957195, 2654016646],
    [3562296087, 3191708229, 1147942216, 3726991905],
    [1403443605, 3591372999, 1291086759, 441919183],
]
SEED_SEQ_OUTPUTS64 = [
    [2477551240072187391, 9577394838764454085],
    [15854241394484835714, 11398914698975566411],
    [13708282465491374871, 16007308345579681096],
    [15424829579845884309, 1898028439751125927],
]


def test_seed_sequence_reference_vectors():
    for entropy, exp32, exp64 in zip(
        SEED_SEQ_INPUTS, SEED_SEQ_OUTPUTS, SEED_SEQ_OUTPUTS64
    ):
        ss = StdlibSeedSequence(entropy)
        assert ss.generate_state(4, 32) == exp32
        assert ss.generate_state(2, 64) == exp64
    # The numpy 0.17-compat small-integer vector.
    assert StdlibSeedSequence(42).generate_state(4, 32) == [
        3444837047, 2669555309, 2046530742, 3581440988,
    ]


def test_stdlib_default_rng_passthrough_and_determinism():
    gen = stdlib_default_rng(1)
    assert stdlib_default_rng(gen) is gen
    a = stdlib_default_rng(42).integers(0, 1000, size=5)
    b = stdlib_default_rng(42).integers(0, 1000, size=5)
    assert a == b


def test_make_rng_accepts_stdlib_generator():
    gen = StdlibGenerator(StdlibPCG64(StdlibSeedSequence(7)))
    assert make_rng(gen) is gen


@needs_numpy
@pytest.mark.parametrize("seed", [0, 1, 42, 123456789, 2**40 + 7])
def test_raw_stream_matches_numpy(seed):
    a = np.random.default_rng(seed)
    b = stdlib_default_rng(seed)
    assert [int(a.bit_generator.random_raw()) for _ in range(64)] == [
        b._bitgen.next64() for _ in range(64)
    ]


@needs_numpy
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_interleaved_scalar_methods_match_numpy(seed):
    anchors = [3, 4, 6, 8, 9, 12, 16]
    a = np.random.default_rng(seed)
    b = stdlib_default_rng(seed)
    for i in range(1500):
        sa, sb = a.random(), b.random()
        assert sa == sb, i
        if sa < 0.2:
            assert int(a.integers(1, 100)) == b.integers(1, 100), i
        elif sa < 0.4:
            assert float(a.uniform(0.18, 0.98)) == b.uniform(0.18, 0.98), i
        elif sa < 0.6:
            assert a.choice(anchors) == b.choice(anchors), i
        elif sa < 0.8:
            assert int(a.integers(1, 5)) == b.integers(1, 5), i
        else:
            # > 32-bit range exercises the 64-bit Lemire path
            assert int(a.integers(0, 2**40)) == b.integers(0, 2**40), i


@needs_numpy
def test_shuffle_and_buffered_32bit_word_match_numpy():
    a = np.random.default_rng(5)
    b = stdlib_default_rng(5)
    for _ in range(200):
        la, lb = list(range(18)), list(range(18))
        a.shuffle(la)
        b.shuffle(lb)
        assert la == lb
        # Interleave draws so a stale/missing 32-bit buffer would desync.
        assert int(a.integers(1, 20)) == b.integers(1, 20)
        assert a.random() == b.random()


@needs_numpy
@pytest.mark.parametrize("lam", [0.5, 3.0, 9.9, 10.0, 25.0, 4000.0])
def test_poisson_matches_numpy(lam):
    a = np.random.default_rng(11)
    b = stdlib_default_rng(11)
    for i in range(300):
        assert int(a.poisson(lam)) == b.poisson(lam), (lam, i)


@needs_numpy
def test_workload_families_regenerate_identically():
    from repro.workloads.random_instances import FAMILIES

    for family, gen in sorted(FAMILIES.items()):
        for m, size, seed in [(2, 6, 0), (5, 40, 2)]:
            with_numpy = gen(m, size, np.random.default_rng(seed))
            with_stdlib = gen(m, size, stdlib_default_rng(seed))
            assert with_numpy.to_dict() == with_stdlib.to_dict(), family
