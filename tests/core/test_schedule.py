"""Tests for the schedule representation."""

from fractions import Fraction

import pytest

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Job
from repro.core.schedule import Placement, Schedule


def _placements():
    jobs = [Job(0, 3, 0), Job(1, 2, 0), Job(2, 4, 1)]
    return [
        Placement(job=jobs[0], machine=0, start=Fraction(0)),
        Placement(job=jobs[1], machine=1, start=Fraction(3)),
        Placement(job=jobs[2], machine=0, start=Fraction(3)),
    ]


class TestPlacement:
    def test_end(self):
        pl = Placement(job=Job(0, 3, 0), machine=0, start=Fraction(2))
        assert pl.end == Fraction(5)

    def test_overlap_detection(self):
        a = Placement(job=Job(0, 3, 0), machine=0, start=Fraction(0))
        b = Placement(job=Job(1, 3, 0), machine=1, start=Fraction(2))
        c = Placement(job=Job(2, 3, 0), machine=1, start=Fraction(3))
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open intervals touch at 3

    def test_fractional_start(self):
        pl = Placement(job=Job(0, 1, 0), machine=0, start=Fraction(5, 3))
        assert pl.end == Fraction(8, 3)


class TestSchedule:
    def test_makespan(self):
        sched = Schedule(_placements(), 2)
        assert sched.makespan == Fraction(7)

    def test_empty_schedule(self):
        sched = Schedule([], 2)
        assert sched.makespan == 0
        assert len(sched) == 0
        assert sched.machines_used() == []

    def test_machine_placements_sorted(self):
        sched = Schedule(_placements(), 2)
        starts = [pl.start for pl in sched.machine_placements(0)]
        assert starts == sorted(starts)

    def test_machine_load(self):
        sched = Schedule(_placements(), 2)
        assert sched.machine_load(0) == 7
        assert sched.machine_load(1) == 2
        assert sched.machine_load(5) == 0  # out of range but not used

    def test_class_placements(self):
        sched = Schedule(_placements(), 2)
        class0 = sched.class_placements(0)
        assert [pl.job.id for pl in class0] == [0, 1]

    def test_duplicate_job_rejected(self):
        pls = _placements()
        pls.append(
            Placement(job=Job(0, 3, 0), machine=1, start=Fraction(9))
        )
        with pytest.raises(InvalidScheduleError):
            Schedule(pls, 2)

    def test_machine_out_of_range_rejected(self):
        pls = [Placement(job=Job(0, 1, 0), machine=2, start=Fraction(0))]
        with pytest.raises(InvalidScheduleError):
            Schedule(pls, 2)

    def test_negative_start_rejected(self):
        pls = [Placement(job=Job(0, 1, 0), machine=0, start=Fraction(-1))]
        with pytest.raises(InvalidScheduleError):
            Schedule(pls, 1)

    def test_contains_and_getitem(self):
        sched = Schedule(_placements(), 2)
        assert 0 in sched
        assert 7 not in sched
        assert sched[1].machine == 1

    def test_ratio_to(self):
        sched = Schedule(_placements(), 2)
        assert sched.ratio_to(7) == 1
        assert sched.ratio_to(Fraction(14, 3)) == Fraction(3, 2)
        with pytest.raises(ValueError):
            sched.ratio_to(0)

    def test_merged_with(self):
        a = Schedule(_placements()[:2], 2)
        b = Schedule(_placements()[2:], 2)
        merged = a.merged_with(b)
        assert len(merged) == 3
        assert merged.makespan == Fraction(7)

    def test_merged_with_machine_mismatch(self):
        a = Schedule([], 2)
        b = Schedule([], 3)
        with pytest.raises(InvalidScheduleError):
            a.merged_with(b)

    def test_serialization_roundtrip(self):
        sched = Schedule(_placements(), 2)
        back = Schedule.from_dict(sched.to_dict())
        assert back.makespan == sched.makespan
        assert len(back) == len(sched)
        for jid, pl in sched.placements.items():
            assert back[jid].start == pl.start
            assert back[jid].machine == pl.machine

    def test_fractional_serialization(self):
        pl = Placement(job=Job(0, 1, 0), machine=0, start=Fraction(5, 3))
        back = Schedule.from_dict(Schedule([pl], 1).to_dict())
        assert back[0].start == Fraction(5, 3)
