"""Tests for the class partition lemmas (Lemma 5, 10, 11)."""

import pytest
from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.core.errors import PreconditionError
from repro.core.instance import Job
from repro.core.split import (
    lemma5_split,
    lemma10_split,
    lemma11_split,
    quarter_half_part,
    sized_total,
)
from repro.util.rational import ge_frac, gt_frac, le_frac


def _items(sizes):
    return [Job(id=i, size=s, class_id=0) for i, s in enumerate(sizes)]


def _class_sizes(T, lo_frac, hi_frac, max_job_frac):
    """Strategy: size lists with total in (lo*T, hi*T] and jobs <= max*T."""
    max_job = int(max_job_frac * T)

    @st.composite
    def build(draw):
        sizes = []
        total = 0
        target_lo = int(lo_frac * T) + 1
        target_hi = int(hi_frac * T)
        while total < target_lo:
            s = draw(st.integers(1, max_job))
            s = min(s, target_hi - total)
            assume(s >= 1)
            sizes.append(s)
            total += s
        assume(target_lo <= total <= target_hi)
        return sizes

    return build()


class TestLemma5:
    def test_single_big_item_case(self):
        # Job in (T/3, T/2] becomes c1 alone.
        T = 12
        c1, c2 = lemma5_split(_items([5, 3, 2]), T)
        assert [j.size for j in c1] == [5]
        assert sized_total(c2) == 5

    def test_greedy_case(self):
        T = 12
        c1, c2 = lemma5_split(_items([4, 4, 4]), T)
        assert ge_frac(sized_total(c1), 1, 3, T)
        assert le_frac(sized_total(c1), 2, 3, T)
        assert le_frac(sized_total(c2), 2, 3, T)

    def test_precondition_total_too_small(self):
        with pytest.raises(PreconditionError):
            lemma5_split(_items([4, 4]), 12)

    def test_precondition_big_job(self):
        with pytest.raises(PreconditionError):
            lemma5_split(_items([7, 3]), 12)

    def test_precondition_total_exceeds_T(self):
        with pytest.raises(PreconditionError):
            lemma5_split(_items([6, 6, 6]), 12)

    @given(st.data())
    @settings(max_examples=60)
    def test_guarantees_hold(self, data):
        T = 60
        sizes = data.draw(
            _class_sizes(T, lo_frac=2 / 3, hi_frac=1.0, max_job_frac=0.5)
        )
        items = _items(sizes)
        c1, c2 = lemma5_split(items, T)
        assert ge_frac(sized_total(c1), 1, 3, T)
        assert le_frac(sized_total(c1), 2, 3, T)
        assert le_frac(sized_total(c2), 2, 3, T)
        assert sorted(j.id for j in c1 + c2) == sorted(
            j.id for j in items
        )


class TestLemma10:
    def test_big_item_case(self):
        T = 16
        check, hat = lemma10_split(_items([9, 4], ), T)
        assert [j.size for j in hat] == [9]
        assert sized_total(check) == 4

    def test_medium_item_case(self):
        T = 16
        check, hat = lemma10_split(_items([6, 6]), T)
        assert sized_total(check) <= sized_total(hat)
        assert le_frac(sized_total(check), 1, 2, T)
        assert le_frac(sized_total(hat), 3, 4, T)

    def test_greedy_case(self):
        T = 16
        check, hat = lemma10_split(_items([3, 3, 3, 3]), T)
        assert le_frac(sized_total(check), 1, 2, T)
        assert le_frac(sized_total(hat), 3, 4, T)
        assert sized_total(check) <= sized_total(hat)

    def test_degenerate_empty_check(self):
        # Single glued block in (T/2, 3T/4]: check part is empty.
        T = 16
        check, hat = lemma10_split(_items([12]), T)
        assert check == []
        assert sized_total(hat) == 12

    def test_precondition_huge_item(self):
        with pytest.raises(PreconditionError):
            lemma10_split(_items([13, 3]), 16)

    def test_precondition_small_total(self):
        with pytest.raises(PreconditionError):
            lemma10_split(_items([5, 5]), 16)

    @given(st.data())
    @settings(max_examples=60)
    def test_guarantees_hold(self, data):
        T = 60
        sizes = data.draw(
            _class_sizes(T, lo_frac=3 / 4, hi_frac=1.0, max_job_frac=0.75)
        )
        # Lemma 10 needs total >= 3T/4 (inclusive) — adjust if the draw
        # landed below because of the open interval convention.
        items = _items(sizes)
        assume(ge_frac(sized_total(items), 3, 4, T))
        check, hat = lemma10_split(items, T)
        assert sized_total(check) <= sized_total(hat)
        assert le_frac(sized_total(check), 1, 2, T)
        assert le_frac(sized_total(hat), 3, 4, T)
        assert sorted(j.id for j in check + hat) == sorted(
            j.id for j in items
        )

    @given(st.data())
    @settings(max_examples=60)
    def test_quarter_half_guarantee(self, data):
        T = 60
        sizes = data.draw(
            _class_sizes(T, lo_frac=3 / 4, hi_frac=1.0, max_job_frac=0.5)
        )
        items = _items(sizes)
        assume(ge_frac(sized_total(items), 3, 4, T))
        check, hat = lemma10_split(items, T)
        part = quarter_half_part(check, hat, T)
        total = sized_total(part)
        assert gt_frac(total, 1, 4, T) and le_frac(total, 1, 2, T)


class TestLemma11:
    def test_medium_item_case(self):
        T = 16
        check, hat = lemma11_split(_items([6, 4]), T)
        assert sized_total(check) <= sized_total(hat)
        assert le_frac(sized_total(hat), 1, 2, T)
        assert gt_frac(sized_total(hat), 1, 4, T)

    def test_greedy_case(self):
        T = 16
        check, hat = lemma11_split(_items([3, 3, 3]), T)
        assert le_frac(sized_total(hat), 1, 2, T)
        assert gt_frac(sized_total(hat), 1, 4, T)

    def test_precondition_range(self):
        with pytest.raises(PreconditionError):
            lemma11_split(_items([4, 4]), 16)  # total == T/2, not >
        with pytest.raises(PreconditionError):
            lemma11_split(_items([6, 6]), 16)  # total == 3T/4, not <

    def test_precondition_big_item(self):
        with pytest.raises(PreconditionError):
            lemma11_split(_items([9, 2]), 16)

    @given(st.data())
    @settings(max_examples=60)
    def test_guarantees_hold(self, data):
        T = 60
        sizes = data.draw(
            _class_sizes(T, lo_frac=1 / 2, hi_frac=0.74, max_job_frac=0.5)
        )
        items = _items(sizes)
        total = sized_total(items)
        assume(gt_frac(total, 1, 2, T) and 4 * total < 3 * T)
        check, hat = lemma11_split(items, T)
        assert sized_total(check) <= sized_total(hat)
        assert le_frac(sized_total(hat), 1, 2, T)
        assert gt_frac(sized_total(hat), 1, 4, T)


class TestQuarterHalfPart:
    def test_raises_when_absent(self):
        T = 16
        with pytest.raises(PreconditionError):
            quarter_half_part([], _items([12]), T)
