"""Unit tests for the tick-grid kernel (:mod:`repro.core.timescale`)."""

from fractions import Fraction

import pytest

from repro.core.errors import InvalidScheduleError
from repro.core.timescale import (
    UNIT,
    TimeScale,
    as_integer_ratio,
    lcm_denominator,
)


class TestAsIntegerRatio:
    def test_int(self):
        assert as_integer_ratio(7) == (7, 1)

    def test_fraction(self):
        assert as_integer_ratio(Fraction(10, 4)) == (5, 2)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            as_integer_ratio(0.5)


class TestLcmDenominator:
    def test_empty(self):
        assert lcm_denominator() == 1

    def test_mixed(self):
        assert (
            lcm_denominator(Fraction(1, 6), Fraction(3, 4), 5) == 12
        )


class TestTimeScale:
    def test_unit_roundtrip(self):
        assert UNIT.to_ticks(5) == 5
        assert UNIT.from_ticks(5) == 5

    def test_fractional_grid(self):
        scale = TimeScale(6)
        assert scale.to_ticks(Fraction(5, 3)) == 10
        assert scale.to_ticks(Fraction(1, 2)) == 3
        assert scale.from_ticks(10) == Fraction(5, 3)
        assert scale.size_ticks(4) == 24

    def test_off_grid_raises(self):
        scale = TimeScale(2)
        with pytest.raises(InvalidScheduleError):
            scale.to_ticks(Fraction(1, 3))

    def test_for_values(self):
        scale = TimeScale.for_values(Fraction(3, 2), Fraction(5, 3))
        assert scale.denominator == 6

    def test_invalid_denominator(self):
        with pytest.raises(ValueError):
            TimeScale(0)
        with pytest.raises(TypeError):
            TimeScale(Fraction(1, 2))

    def test_equality(self):
        assert TimeScale(3) == TimeScale(3)
        assert TimeScale(3) != TimeScale(4)
        assert hash(TimeScale(3)) == hash(TimeScale(3))
