"""Tests for utilities: rational comparisons, selection, blocks, rng."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.blocks import Block, blocks_of_jobs, flatten
from repro.core.errors import PreconditionError
from repro.core.instance import Job
from repro.util.rational import frac_of, ge_frac, gt_frac, le_frac, lt_frac
from repro.util.rng import make_rng
from repro.util.selection import nth_largest, nth_smallest, select_kth_smallest


class TestRational:
    def test_basic_comparisons(self):
        assert gt_frac(9, 1, 2, 16)  # 9 > 8
        assert not gt_frac(8, 1, 2, 16)
        assert ge_frac(8, 1, 2, 16)
        assert lt_frac(7, 1, 2, 16)
        assert le_frac(8, 1, 2, 16)

    def test_fraction_bound(self):
        T = Fraction(25, 2)
        assert gt_frac(10, 3, 4, T)  # 10 > 9.375
        assert not gt_frac(9, 3, 4, T)

    def test_frac_of(self):
        assert frac_of(3, 4, 16) == 12
        assert frac_of(5, 3, 10) == Fraction(50, 3)

    @given(
        st.integers(0, 1000),
        st.integers(1, 7),
        st.integers(1, 7),
        st.integers(1, 500),
    )
    def test_agrees_with_fractions(self, v, num, den, bound):
        assert gt_frac(v, num, den, bound) == (v > Fraction(num * bound, den))
        assert ge_frac(v, num, den, bound) == (v >= Fraction(num * bound, den))


class TestSelection:
    def test_known_values(self):
        values = [5, 1, 9, 3, 7]
        assert nth_largest(values, 1) == 9
        assert nth_largest(values, 3) == 5
        assert nth_smallest(values, 2) == 3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            select_kth_smallest([1, 2], 3)
        with pytest.raises(ValueError):
            select_kth_smallest([1, 2], 0)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_matches_sorted(self, values):
        ordered = sorted(values)
        for k in {1, len(values) // 2 + 1, len(values)}:
            assert select_kth_smallest(values, k) == ordered[k - 1]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_nth_largest_consistent(self, values):
        ordered = sorted(values, reverse=True)
        assert nth_largest(values, 1) == ordered[0]
        assert nth_largest(values, len(values)) == ordered[-1]

    def test_duplicates_heavy(self):
        values = [4] * 30 + [2] * 30 + [9]
        assert select_kth_smallest(values, 31) == 4
        assert nth_largest(values, 1) == 9


class TestBlocks:
    def test_block_basics(self):
        block = Block([Job(0, 3, 1), Job(1, 2, 1)])
        assert block.size == 5
        assert block.class_id == 1

    def test_empty_block_rejected(self):
        with pytest.raises(PreconditionError):
            Block([])

    def test_mixed_class_rejected(self):
        with pytest.raises(PreconditionError):
            Block([Job(0, 3, 1), Job(1, 2, 2)])

    def test_blocks_of_jobs_and_flatten(self):
        jobs = [Job(0, 3, 1), Job(1, 2, 1)]
        blocks = blocks_of_jobs(jobs)
        assert len(blocks) == 2
        assert flatten(blocks) == jobs


class TestRng:
    def test_seed_determinism(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng
