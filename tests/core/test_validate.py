"""Tests for the schedule validator (the single source of truth)."""

from fractions import Fraction

import pytest

from repro.core.errors import InvalidScheduleError
from repro.core.instance import Instance, Job
from repro.core.schedule import Placement, Schedule
from repro.core.validate import is_valid, validate_schedule


@pytest.fixture
def inst():
    return Instance.from_class_sizes([[3, 2], [4]], 2)


def _schedule(inst, triples):
    by_id = {j.id: j for j in inst.jobs}
    return Schedule(
        [
            Placement(job=by_id[jid], machine=m, start=Fraction(s))
            for jid, m, s in triples
        ],
        inst.num_machines,
    )


class TestValidate:
    def test_valid_schedule(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 3), (2, 1, 5)])
        validate_schedule(inst, sched)
        assert is_valid(inst, sched)

    def test_missing_job(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (2, 1, 0)])
        with pytest.raises(InvalidScheduleError, match="not scheduled"):
            validate_schedule(inst, sched)

    def test_foreign_job(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 3), (2, 1, 5)])
        foreign = Schedule(
            list(sched) + [Placement(Job(99, 1, 0), 0, Fraction(20))],
            inst.num_machines,
        )
        with pytest.raises(InvalidScheduleError, match="foreign"):
            validate_schedule(inst, foreign)

    def test_altered_job(self, inst):
        pls = [
            Placement(Job(0, 3, 0), 0, Fraction(0)),
            Placement(Job(1, 2, 1), 1, Fraction(3)),  # class altered!
            Placement(Job(2, 4, 1), 1, Fraction(5)),
        ]
        sched = Schedule(pls, 2)
        with pytest.raises(InvalidScheduleError, match="altered"):
            validate_schedule(inst, sched)

    def test_machine_overlap(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 0), (2, 0, 2)])
        with pytest.raises(InvalidScheduleError, match="machine 0"):
            validate_schedule(inst, sched)

    def test_class_overlap_across_machines(self, inst):
        # jobs 0 and 1 are both class 0; concurrent on different machines.
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 1), (2, 1, 4)])
        with pytest.raises(InvalidScheduleError, match="class 0"):
            validate_schedule(inst, sched)

    def test_class_sequential_ok(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 3), (2, 0, 3)])
        validate_schedule(inst, sched)

    def test_machine_count_mismatch(self, inst):
        sched = Schedule([], 3)
        with pytest.raises(InvalidScheduleError, match="machines"):
            validate_schedule(inst, sched)

    def test_deadline_enforced(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 3), (2, 1, 5)])
        validate_schedule(inst, sched, deadline=Fraction(9))
        with pytest.raises(InvalidScheduleError, match="deadline"):
            validate_schedule(inst, sched, deadline=Fraction(8))

    def test_is_valid_false_on_error(self, inst):
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 1), (2, 1, 4)])
        assert not is_valid(inst, sched)

    def test_empty_instance_empty_schedule(self):
        inst = Instance([], 2)
        validate_schedule(inst, Schedule([], 2))

    def test_touching_class_jobs_valid(self, inst):
        # job 1 (class 0) starts exactly when job 0 (class 0) ends.
        sched = _schedule(inst, [(0, 0, 0), (1, 1, 3), (2, 0, 3)])
        validate_schedule(inst, sched)
