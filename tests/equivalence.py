"""Reusable equivalence harness for dispatch-kernel ports.

Every time a placement core moves onto the kernel, the same three layers
of evidence pin it against the preserved pre-kernel loop
(:mod:`repro.algorithms.reference`); this module is the plug-in point so
a future port only declares its reference pair and reuses the machinery:

* **outcome equivalence** — :func:`run_and_capture` /
  :func:`assert_same_outcome` run two solvers on one instance and
  require bit-identical schedules (``to_dict``), makespan, lower bound
  *and step logs* — or the same declared error type.  Hypothesis tests
  call :func:`assert_matches_reference` per drawn instance.
* **golden replay** — :func:`golden_cells` filters
  ``tests/data/goldens_seed.json`` (generated from pre-refactor code)
  and :func:`replay_golden_cell` replays a cell through *any* solver,
  so both the kernel implementation and the preserved reference copy
  are checked against the frozen pre-port behavior.
* **step-count shims** — :func:`kernel_counters` pulls the counting-shim
  counters out of a result and :func:`assert_subquadratic_growth`
  encodes the "4× the input must cost ≪ 16× the work" regression check.
* **kernel-family equivalence** — :func:`assert_kernels_agree` runs one
  algorithm under the object kernel and the structure-of-arrays kernel
  (PR 7) and requires bit-identical decisions *and* identical work
  counters; :func:`forced_kernel` flips the ``REPRO_KERNEL`` default so
  a whole code path (or the whole suite) runs array-backed.

``EQUIVALENCE_PAIRS`` maps each ported registry algorithm to its
preserved reference solver: the dispatching baselines (PR 3), the
approximation algorithms (PR 4) and the rebuild-per-guess EPTAS driver
(PR 8).  ``KERNEL_PORTED_ALGORITHMS`` lists
the solvers threaded onto the pluggable kernel (the same six — they
accept ``kernel=`` and stamp ``stats["kernel_impl"]``).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional

from repro import solve
from repro.algorithms.base import ScheduleResult
from repro.algorithms.reference import (
    APPROX_REFERENCES,
    EPTAS_REFERENCES,
    NAIVE_REFERENCES,
)
from repro.core.errors import ReproError
from repro.core.instance import Instance
from repro.workloads import generate

#: Registry name → preserved pre-kernel solver, for every ported core.
EQUIVALENCE_PAIRS: Dict[str, Callable[..., ScheduleResult]] = {
    **NAIVE_REFERENCES,
    **APPROX_REFERENCES,
    **EPTAS_REFERENCES,
}

#: Registry algorithms threaded onto the pluggable dispatch kernel:
#: they accept ``kernel=`` and run identically on the object and the
#: structure-of-arrays families.
KERNEL_PORTED_ALGORITHMS = (
    "class_greedy",
    "five_thirds",
    "list_lpt",
    "merge_lpt",
    "no_huge",
    "three_halves",
)

_GOLDENS_PATH = Path(__file__).parent / "data" / "goldens_seed.json"


@dataclass
class Outcome:
    """What a solver did on one instance: a result or a declared error."""

    result: Optional[ScheduleResult] = None
    error: Optional[str] = None  # exception type name

    @property
    def raised(self) -> bool:
        return self.error is not None


def run_and_capture(solver, inst: Instance, **kwargs) -> Outcome:
    """Run ``solver`` and capture the result or the declared-error type.

    Only :class:`~repro.core.errors.ReproError` subclasses count as an
    outcome (raising behavior is part of the pinned contract); anything
    else propagates as a genuine test failure.
    """
    try:
        return Outcome(result=solver(inst, **kwargs))
    except ReproError as exc:
        return Outcome(error=type(exc).__name__)


def assert_same_outcome(
    kernel: Outcome, reference: Outcome, *, context: str = ""
) -> None:
    """Bit-for-bit decision equivalence of two captured outcomes."""
    tag = f" [{context}]" if context else ""
    assert kernel.raised == reference.raised, (
        f"kernel {'raised ' + str(kernel.error) if kernel.raised else 'succeeded'}, "
        f"reference "
        f"{'raised ' + str(reference.error) if reference.raised else 'succeeded'}"
        f"{tag}"
    )
    if kernel.raised:
        assert kernel.error == reference.error, tag
        return
    a, b = kernel.result, reference.result
    assert a.schedule.to_dict() == b.schedule.to_dict(), tag
    assert a.makespan == b.makespan, tag
    assert a.lower_bound == b.lower_bound, tag
    assert a.algorithm == b.algorithm, tag
    assert a.guarantee == b.guarantee, tag
    # Step logs are decisions too: same classes to the same machines in
    # the same order, not just the same final layout.
    for key in ("steps", "no_huge_steps"):
        assert a.stats.get(key) == b.stats.get(key), (key, tag)


def assert_matches_reference(
    inst: Instance, algorithm: str, **kwargs
) -> None:
    """Run the registry (kernel) implementation and its preserved
    reference on ``inst`` and require identical decisions."""
    reference = EQUIVALENCE_PAIRS[algorithm]
    kernel = run_and_capture(
        lambda i, **kw: solve(i, algorithm=algorithm, **kw), inst, **kwargs
    )
    ref = run_and_capture(reference, inst, **kwargs)
    assert_same_outcome(kernel, ref, context=algorithm)


@contextmanager
def forced_kernel(name: str) -> Iterator[None]:
    """Force the default kernel family to ``name`` for the block.

    Flips the ``REPRO_KERNEL`` environment default that
    :func:`repro.core.arraykernel.resolve_kernel` consults, so every
    solve inside the block that does not pass an explicit ``kernel=``
    runs on the requested family — including kernel-threaded calls made
    *inside* solvers that expose no kernel parameter themselves.
    """
    from repro.core.arraykernel import KERNEL_ENV

    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous


def assert_kernels_agree(
    inst: Instance, algorithm: str, **kwargs
) -> Outcome:
    """Run ``algorithm`` under the object kernel and the array kernel
    and require bit-identical decisions *and* identical work counters
    (the array kernel must match the object kernel's accept/reject
    choices step for step, not merely land on the same schedule).
    Returns the shared outcome."""
    obj = run_and_capture(
        lambda i, **kw: solve(
            i, algorithm=algorithm, kernel="object", **kw
        ),
        inst,
        **kwargs,
    )
    arr = run_and_capture(
        lambda i, **kw: solve(
            i, algorithm=algorithm, kernel="array", **kw
        ),
        inst,
        **kwargs,
    )
    assert_same_outcome(
        arr, obj, context=f"{algorithm}: array vs object kernel"
    )
    if not obj.raised:
        # Trivial fast paths (empty instance, one class per machine)
        # return before kernel resolution and carry no stamp; both
        # families must take the same path.
        stamped = "kernel_impl" in obj.result.stats
        assert ("kernel_impl" in arr.result.stats) == stamped
        if stamped:
            assert obj.result.stats["kernel_impl"] == "object"
            assert arr.result.stats["kernel_impl"] == "array"
            # Not every path carries a counting shim (e.g. merge_lpt's
            # single-machine merge never touches the dispatch state);
            # when one side has counters, both must, and they agree.
            counted = any(
                key in obj.result.stats for key in ("kernel", "dispatch")
            )
            if counted:
                assert kernel_counters(arr.result) == kernel_counters(
                    obj.result
                ), f"{algorithm}: kernel work counters diverged"
            else:
                assert not any(
                    key in arr.result.stats
                    for key in ("kernel", "dispatch")
                )
    return obj


# --------------------------------------------------------------------- #
# Golden replay
# --------------------------------------------------------------------- #
def golden_cells(
    algorithms: Optional[Iterable[str]] = None,
    *,
    min_jobs: int = 0,
) -> list:
    """The golden cells, optionally filtered by algorithm name.

    ``min_jobs`` filters on the cell's ``size`` knob (a proxy for the
    instance scale) — use it to pick out the medium-n cells.
    """
    cells = json.loads(_GOLDENS_PATH.read_text())["cells"]
    wanted = set(algorithms) if algorithms is not None else None
    return [
        cell
        for cell in cells
        if (wanted is None or cell["algorithm"] in wanted)
        and cell["size"] >= min_jobs
    ]


def golden_cell_id(cell: Mapping) -> str:
    """Stable pytest id for one golden cell."""
    tag = "-".join(
        f"{k}={v}" for k, v in sorted(cell.get("kwargs", {}).items())
    )
    return (
        f"{cell['algorithm']}-{cell['family']}-m{cell['machines']}"
        f"-s{cell['size']}-seed{cell['seed']}" + (f"-{tag}" if tag else "")
    )


def replay_golden_cell(cell: Mapping, solver=None) -> None:
    """Replay one golden cell through ``solver`` (default: the registry
    implementation) and require the frozen pre-refactor outcome."""
    from fractions import Fraction

    inst = generate(
        cell["family"], cell["machines"], cell["size"], cell["seed"]
    )
    if solver is None:
        def solver(i, **kw):
            return solve(i, algorithm=cell["algorithm"], **kw)

    outcome = run_and_capture(solver, inst, **cell.get("kwargs", {}))
    if outcome.raised:
        assert cell.get("error") == outcome.error, (
            f"raised {outcome.error}, golden "
            f"{cell.get('error', 'succeeded')}"
        )
        return
    assert "error" not in cell, f"golden raised {cell.get('error')}"
    result = outcome.result
    assert result.schedule.to_dict() == cell["schedule"]
    makespan = Fraction(result.schedule.makespan)
    assert [makespan.numerator, makespan.denominator] == cell["makespan"]
    lower = Fraction(result.lower_bound)
    assert [lower.numerator, lower.denominator] == cell["lower_bound"]


# --------------------------------------------------------------------- #
# Step-count shims
# --------------------------------------------------------------------- #
def kernel_counters(result: ScheduleResult) -> Dict[str, int]:
    """The counting-shim counters of a kernel result (``dispatch`` for
    the baselines, ``kernel`` for the approximation algorithms)."""
    stats = result.stats
    counters = stats.get("kernel", stats.get("dispatch"))
    assert counters is not None, (
        f"{result.algorithm} result carries no kernel counters"
    )
    return dict(counters)


def traced_solve(
    inst: Instance, algorithm: str, kernel: str = "object", **kwargs
):
    """Solve under an enabled in-memory tracer (and the given kernel
    family); returns ``(result, promoted counters dict)``."""
    from repro.obs import Tracer, set_tracer

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with forced_kernel(kernel):
            result = solve(inst, algorithm=algorithm, **kwargs)
    finally:
        set_tracer(previous)
    return result, dict(tracer.counters)


def assert_traced_counters_match(inst: Instance, algorithm: str) -> None:
    """The obs layer's promoted ``kernel.*`` counters must equal the
    step-count shim counters bit for bit — and be identical under both
    kernel families.  A drift here means telemetry invented numbers the
    counting shims never recorded (or the kernels stopped doing the
    same abstract work)."""
    per_kernel: Dict[str, Dict[str, int]] = {}
    for kernel in ("object", "array"):
        try:
            result, counters = traced_solve(inst, algorithm, kernel)
        except ReproError:
            return  # declared precondition/infeasibility: nothing traced
        promoted = {
            key: value
            for key, value in counters.items()
            if key.startswith("kernel.")
        }
        shim = (result.stats or {}).get(
            "kernel", (result.stats or {}).get("dispatch")
        )
        if shim is None:
            assert not promoted, (
                f"{algorithm} [{kernel}]: counters promoted to the "
                "tracer but the result carries no counting shim"
            )
            return
        expected = {
            f"kernel.{key}": value
            for key, value in shim.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        assert promoted == expected, (
            f"{algorithm} [{kernel}]: traced counters diverged from "
            "the step-count shims"
        )
        per_kernel[kernel] = promoted
    assert per_kernel["object"] == per_kernel["array"], (
        f"{algorithm}: traced kernel counters differ across kernel "
        "families"
    )


def assert_subquadratic_growth(
    small: Mapping[str, int],
    large: Mapping[str, int],
    keys: Iterable[str],
    *,
    n_key: str = "n",
    slack: float = 2.0,
) -> None:
    """Require ``keys`` to grow at most ``slack ×`` linearly in
    ``n_key`` between two measurements (a quadratic regression shows
    ``(n_large/n_small)²`` growth and fails loudly)."""
    ratio = large[n_key] / small[n_key]
    assert ratio > 1, "the two measurements must differ in scale"
    for key in keys:
        if small[key] == 0:
            continue
        growth = large[key] / small[key]
        assert growth <= slack * ratio, (
            f"{key} grew {growth:.1f}x for a {ratio:.1f}x larger input "
            f"(limit {slack * ratio:.1f}x)"
        )
