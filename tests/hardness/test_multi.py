"""Tests for the multi-resource MSRS model."""

from fractions import Fraction

import pytest

from repro.core.errors import InvalidInstanceError, InvalidScheduleError
from tests.markers import needs_milp
from repro.hardness.multi import (
    MultiInstance,
    MultiJob,
    exact_multi_makespan,
    greedy_multi_schedule,
    validate_multi_schedule,
)


def _inst():
    jobs = [
        MultiJob(0, 2, frozenset({"r1", "r2"})),
        MultiJob(1, 3, frozenset({"r2"})),
        MultiJob(2, 1, frozenset({"r3"})),
    ]
    return MultiInstance(jobs, 2)


class TestModel:
    def test_conflicts(self):
        a = MultiJob(0, 1, frozenset({"x", "y"}))
        b = MultiJob(1, 1, frozenset({"y"}))
        c = MultiJob(2, 1, frozenset({"z"}))
        assert a.conflicts(b)
        assert not a.conflicts(c)

    def test_empty_resources_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiJob(0, 1, frozenset())

    def test_duplicate_ids_rejected(self):
        jobs = [
            MultiJob(0, 1, frozenset({"a"})),
            MultiJob(0, 1, frozenset({"b"})),
        ]
        with pytest.raises(InvalidInstanceError):
            MultiInstance(jobs, 1)

    def test_resource_load_and_lower_bound(self):
        inst = _inst()
        assert inst.resource_load("r2") == 5
        assert inst.lower_bound() == max(Fraction(6, 2), 5)

    def test_max_resources_per_job(self):
        assert _inst().max_resources_per_job() == 2


class TestValidator:
    def test_valid(self):
        inst = _inst()
        sched = {0: (0, Fraction(0)), 1: (1, Fraction(2)), 2: (1, Fraction(0))}
        assert validate_multi_schedule(inst, sched) == 5

    def test_resource_conflict(self):
        inst = _inst()
        sched = {0: (0, Fraction(0)), 1: (1, Fraction(1)), 2: (1, Fraction(0))}
        with pytest.raises(InvalidScheduleError, match="r2"):
            validate_multi_schedule(inst, sched)

    def test_machine_conflict(self):
        inst = _inst()
        sched = {0: (0, Fraction(0)), 1: (0, Fraction(1)), 2: (1, Fraction(0))}
        with pytest.raises(InvalidScheduleError):
            validate_multi_schedule(inst, sched)

    def test_missing_job(self):
        inst = _inst()
        with pytest.raises(InvalidScheduleError, match="mismatch"):
            validate_multi_schedule(inst, {0: (0, Fraction(0))})

    def test_deadline(self):
        inst = _inst()
        sched = {0: (0, Fraction(0)), 1: (1, Fraction(2)), 2: (1, Fraction(0))}
        with pytest.raises(InvalidScheduleError, match="deadline"):
            validate_multi_schedule(inst, sched, deadline=Fraction(4))


class TestSolvers:
    def test_greedy_valid(self):
        inst = _inst()
        sched = greedy_multi_schedule(inst)
        makespan = validate_multi_schedule(inst, sched)
        assert makespan >= inst.lower_bound()

    @needs_milp
    def test_exact_matches_known(self):
        inst = _inst()
        opt, sched = exact_multi_makespan(inst)
        validate_multi_schedule(inst, sched)
        assert opt == 5  # r2 serializes jobs 0 and 1

    @needs_milp
    def test_exact_beats_or_ties_greedy(self):
        jobs = [
            MultiJob(0, 2, frozenset({"a", "b"})),
            MultiJob(1, 2, frozenset({"b", "c"})),
            MultiJob(2, 2, frozenset({"c", "a"})),
            MultiJob(3, 3, frozenset({"d"})),
        ]
        inst = MultiInstance(jobs, 2)
        greedy = validate_multi_schedule(inst, greedy_multi_schedule(inst))
        opt, _ = exact_multi_makespan(inst)
        assert opt <= greedy
