"""Tests for the Theorem 23 reduction and Lemma 24."""

from fractions import Fraction

import pytest

from repro.core.errors import InvalidScheduleError
from repro.hardness.multi import (
    exact_multi_makespan,
    validate_multi_schedule,
)
from repro.hardness.reduction import (
    build_reduction,
    decode_assignment,
    schedule_from_assignment,
    trivial_schedule,
)
from tests.markers import needs_milp
from repro.hardness.sat import (
    brute_force_mixed,
    brute_force_satisfiable,
    random_monotone_3sat22,
    split_complete_formula,
)


@pytest.fixture(scope="module")
def sat_reduction():
    formula = random_monotone_3sat22(3, seed=1)
    assignment = brute_force_satisfiable(formula)
    assert assignment is not None
    return formula, assignment, build_reduction(formula)


class TestStructure:
    def test_theorem_resource_and_size_caps(self, sat_reduction):
        _, _, red = sat_reduction
        assert red.instance.max_resources_per_job() <= 3
        assert {j.size for j in red.instance.jobs} <= {1, 2, 3}

    def test_machine_count(self, sat_reduction):
        formula, _, red = sat_reduction
        # 2|C| + 2|X| for pure monotone formulas (no XOR pseudo anchors).
        assert red.instance.num_machines == (
            2 * formula.num_clauses + 2 * formula.num_variables
        )

    def test_volume_tightness(self, sat_reduction):
        _, _, red = sat_reduction
        volume = sum(j.size for j in red.instance.jobs)
        assert volume == 4 * red.instance.num_machines

    def test_mixed_structure_caps(self):
        red = build_reduction(split_complete_formula())
        assert red.instance.max_resources_per_job() <= 3
        assert {j.size for j in red.instance.jobs} <= {1, 2, 3}


class TestLemma24Forward:
    def test_satisfying_assignment_gives_makespan_4(self, sat_reduction):
        formula, assignment, red = sat_reduction
        schedule = schedule_from_assignment(red, assignment)
        makespan = validate_multi_schedule(
            red.instance, schedule, deadline=Fraction(4)
        )
        assert makespan == 4

    def test_violating_assignment_rejected(self, sat_reduction):
        formula, assignment, red = sat_reduction
        bad = [not v for v in assignment]
        if formula.satisfied_by(bad):
            pytest.skip("complement also satisfies this formula")
        with pytest.raises(InvalidScheduleError):
            schedule_from_assignment(red, bad)

    def test_mixed_satisfiable_gives_makespan_4(self):
        formula = split_complete_formula(satisfiable=True)
        assignment = brute_force_mixed(formula)
        red = build_reduction(formula)
        schedule = schedule_from_assignment(red, assignment)
        makespan = validate_multi_schedule(
            red.instance, schedule, deadline=Fraction(4)
        )
        assert makespan == 4


class TestTrivialSchedule:
    def test_monotone_makespan_5(self, sat_reduction):
        _, _, red = sat_reduction
        makespan = validate_multi_schedule(
            red.instance, trivial_schedule(red)
        )
        assert makespan == 5

    def test_unsat_mixed_makespan_5(self):
        red = build_reduction(split_complete_formula(satisfiable=False))
        makespan = validate_multi_schedule(
            red.instance, trivial_schedule(red)
        )
        assert makespan == 5


class TestDecoding:
    def test_roundtrip(self, sat_reduction):
        formula, assignment, red = sat_reduction
        schedule = schedule_from_assignment(red, assignment)
        decoded = decode_assignment(red, schedule)
        assert formula.satisfied_by(decoded)

    def test_mirror_schedule_decodes(self, sat_reduction):
        formula, assignment, red = sat_reduction
        schedule = schedule_from_assignment(red, assignment)
        by_job = {j.id: j for j in red.instance.jobs}
        mirrored = {
            jid: (machine, Fraction(4) - start - by_job[jid].size)
            for jid, (machine, start) in schedule.items()
        }
        validate_multi_schedule(red.instance, mirrored, deadline=Fraction(4))
        decoded = decode_assignment(red, mirrored)
        assert formula.satisfied_by(decoded)

    def test_decode_rejects_bad_makespan(self, sat_reduction):
        _, _, red = sat_reduction
        with pytest.raises(InvalidScheduleError):
            decode_assignment(red, trivial_schedule(red))


class TestExactGap:
    @needs_milp
    def test_exact_opt_is_4_iff_satisfiable_small(self):
        formula = random_monotone_3sat22(3, seed=1)
        satisfiable = brute_force_satisfiable(formula) is not None
        red = build_reduction(formula)
        opt, schedule = exact_multi_makespan(red.instance, horizon=5)
        assert (opt == 4) == satisfiable
        if opt == 4:
            decoded = decode_assignment(red, schedule)
            assert formula.satisfied_by(decoded)

    @needs_milp
    def test_xor_gadget_enforces_exactly_one(self):
        """A single XOR pair with both literals forced equal should push
        the optimum to 5 (exactly-one cannot hold)."""
        from repro.hardness.sat import MixedFormula, XorPair

        # x0 == x1 (equality) AND x0 != x1 (xor on same polarity) is UNSAT.
        formula = MixedFormula(
            2,
            [],
            [
                XorPair(((0, True), (1, False))),  # x0 == x1
                XorPair(((0, True), (1, True))),  # exactly one of x0, x1
            ],
        )
        assert brute_force_mixed(formula) is None
        red = build_reduction(formula)
        makespan = validate_multi_schedule(
            red.instance, trivial_schedule(red)
        )
        assert makespan == 5
        opt, _ = exact_multi_makespan(red.instance, horizon=5)
        assert opt == 5

    def test_xor_only_satisfiable_formula(self):
        from repro.hardness.sat import MixedFormula, XorPair

        formula = MixedFormula(
            2, [], [XorPair(((0, True), (1, True)))]
        )
        assignment = brute_force_mixed(formula)
        assert assignment is not None
        red = build_reduction(formula)
        schedule = schedule_from_assignment(red, assignment)
        makespan = validate_multi_schedule(
            red.instance, schedule, deadline=Fraction(4)
        )
        assert makespan == 4
        decoded = decode_assignment(red, schedule)
        assert formula.satisfied_by(decoded)
