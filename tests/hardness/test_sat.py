"""Tests for Monotone 3-SAT-(2,2) and the mixed-formula machinery."""

import pytest

from repro.core.errors import InvalidInstanceError
from repro.hardness.sat import (
    Clause,
    MixedFormula,
    Monotone3Sat22,
    OrClause,
    XorPair,
    brute_force_mixed,
    brute_force_satisfiable,
    monotone_to_mixed,
    random_monotone_3sat22,
    split_complete_formula,
)


class TestClause:
    def test_satisfaction_positive(self):
        clause = Clause((0, 1, 2), True)
        assert clause.satisfied([True, False, False])
        assert not clause.satisfied([False, False, False])

    def test_satisfaction_negative(self):
        clause = Clause((0, 1, 2), False)
        assert clause.satisfied([True, False, True])
        assert not clause.satisfied([True, True, True])

    def test_distinct_vars_required(self):
        with pytest.raises(InvalidInstanceError):
            Clause((0, 0, 1), True)


class TestMonotone3Sat22:
    def test_generator_structure(self):
        formula = random_monotone_3sat22(6, seed=0)
        assert formula.num_variables == 6
        assert formula.num_clauses == 8
        assert len(formula.positive_clauses()) == 4
        assert len(formula.negative_clauses()) == 4

    def test_generator_deterministic(self):
        a = random_monotone_3sat22(6, seed=5)
        b = random_monotone_3sat22(6, seed=5)
        assert a.clauses == b.clauses

    def test_literal_occurrences(self):
        formula = random_monotone_3sat22(3, seed=0)
        for v in range(3):
            assert len(formula.literal_occurrences(v, True)) == 2
            assert len(formula.literal_occurrences(v, False)) == 2

    def test_invalid_counts_rejected(self):
        clauses = [Clause((0, 1, 2), True)] * 4
        with pytest.raises(InvalidInstanceError):
            Monotone3Sat22(3, clauses)

    def test_num_variables_multiple_of_three(self):
        with pytest.raises(InvalidInstanceError):
            random_monotone_3sat22(4, seed=0)

    def test_brute_force_finds_assignment(self):
        formula = random_monotone_3sat22(3, seed=1)
        assignment = brute_force_satisfiable(formula)
        if assignment is not None:
            assert formula.satisfied_by(assignment)

    def test_brute_force_guard(self):
        formula = random_monotone_3sat22(3, seed=0)
        with pytest.raises(InvalidInstanceError):
            brute_force_satisfiable(formula, max_variables=2)


class TestMixedFormula:
    def test_or_clause(self):
        clause = OrClause(((0, True), (1, False), (2, True)))
        assert clause.satisfied([False, False, False])  # (1, False) holds
        assert not clause.satisfied([False, True, False])

    def test_xor_pair_encodes_equality(self):
        pair = XorPair(((0, True), (1, False)))
        assert pair.satisfied([True, True])
        assert pair.satisfied([False, False])
        assert not pair.satisfied([True, False])

    def test_literal_budget_enforced(self):
        clause = OrClause(((0, True), (1, True), (2, True)))
        with pytest.raises(InvalidInstanceError):
            MixedFormula(3, [clause, clause, clause])

    def test_monotone_to_mixed_equisatisfiable(self):
        formula = random_monotone_3sat22(3, seed=1)
        mixed = monotone_to_mixed(formula)
        a = brute_force_satisfiable(formula)
        b = brute_force_mixed(mixed)
        assert (a is None) == (b is None)

    def test_literal_uses(self):
        formula = split_complete_formula()
        uses = formula.literal_uses((0, True))
        assert 1 <= len(uses) <= 2


class TestSplitComplete:
    def test_unsatisfiable_variant(self):
        formula = split_complete_formula(satisfiable=False)
        assert formula.num_variables == 12
        assert len(formula.or_clauses) == 8
        assert len(formula.xor_pairs) == 9
        assert brute_force_mixed(formula) is None

    def test_satisfiable_variant(self):
        formula = split_complete_formula(satisfiable=True)
        assignment = brute_force_mixed(formula)
        assert assignment is not None
        assert formula.satisfied_by(assignment)

    def test_copies_forced_equal(self):
        formula = split_complete_formula(satisfiable=True)
        assignment = brute_force_mixed(formula)
        # XOR chains force the four copies of each base variable equal.
        for base in range(3):
            copies = [assignment[base * 4 + j] for j in range(4)]
            assert len(set(copies)) == 1
