"""The fixture corpus is a zoo of deliberate violations — data for the
linter tests, never test modules for pytest to import (some shadow real
test-module basenames, e.g. ``test_differential.py``)."""

collect_ignore = ["fixtures"]
