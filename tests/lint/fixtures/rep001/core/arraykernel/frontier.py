"""Fixture: the array kernel is inside REP001's tick-discipline scope.

A ``Fraction`` constructed in any ``core/arraykernel/`` module is a
hot-path violation exactly like one in ``core/dispatch.py`` — the
array kernel exists to keep the placement loop on int64 arithmetic.
"""

from fractions import Fraction


def build_tree(tops, den):
    total = sum(tops)
    return Fraction(total, den)  # planted: array kernel must stay integer


def guarantee_stamp():
    return Fraction(5, 3)  # constant rational: allowlisted


def to_dict(tree):
    return {"min": Fraction(tree[1])}  # serialization boundary: allowlisted
