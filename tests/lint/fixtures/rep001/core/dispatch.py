"""REP001 fixture: Fraction discipline in a tick-kernel-shaped module.

The path mirrors ``core/dispatch.py`` so the rule's scope patterns
select it; the engine's directory walk skips this corpus — the lint
tests name it explicitly.
"""

from fractions import Fraction

#: Allowlisted: constant rational (guarantee-stamp shape, no tick data).
GUARANTEE = Fraction(5, 3)


def place_hot(load, den):
    """Positive: Fraction constructed on the placement hot path."""
    return Fraction(load, den) + 1


def place_suppressed(load, den):
    # repro: allow[REP001] fixture: a declared boundary conversion site
    return Fraction(load, den)


def to_dict(load, den):
    """Allowlisted miss: serialization-boundary function body."""
    return {"load": Fraction(load, den)}


class Frontier:
    def __init__(self, num, den):
        self._num = num
        self._den = den

    @property
    def top(self):
        """Allowlisted miss: exact read-out accessor."""
        return Fraction(self._num, self._den)
