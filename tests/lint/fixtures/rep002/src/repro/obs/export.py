"""REP002 fixture: the obs exporters are order-sensitive code."""


def merged_counter_names(snapshots):
    """Positive: bare-set iteration feeds merged trace output order."""
    for name in {name for snap in snapshots for name in snap}:
        yield name


def merged_sorted(snapshots):
    """Allowlisted miss: order normalized before emitting."""
    names = {name for snap in snapshots for name in snap}
    return sorted(names)
