"""REP002 fixture: nondeterminism sources in record-producing code."""

import random
import time
from datetime import datetime

import numpy as np


def stamp():
    """Positive: absolute wall-clock read."""
    return time.time()


def stamp_suppressed():
    # repro: allow[REP002] fixture: demo of an inline suppression
    return datetime.now()


def jitter():
    """Positive: shared unseeded stdlib RNG state."""
    return random.random()


def rng_unseeded():
    """Positive: generator without a seed."""
    return np.random.default_rng()


def rng_seeded(seed):
    """Allowlisted miss: explicit seed."""
    return np.random.default_rng(seed)


def duration():
    """Allowlisted miss: duration clock feeding volatile fields only."""
    return time.perf_counter()


def emit_keys(cells):
    """Positive: bare-set iteration feeds emitted order."""
    for key in set(cells):
        yield key


def emit_sorted(cells):
    """Allowlisted miss: order normalized before emitting."""
    for key in sorted(set(cells)):
        yield key
