"""REP002 fixture: telemetry leaking into canonical output."""

from repro.obs import get_tracer


def canonical_dict(record):
    """Positive: obs symbol referenced inside canonical construction."""
    get_tracer().count("records.canonicalized")
    data = dict(record)
    data.pop("wall_time", None)
    return data


def canonical_stream(records):
    """Positive: lazy obs import inside canonical construction."""
    from repro.obs import tracing_enabled

    if tracing_enabled():
        pass
    return "\n".join(str(sorted(rec.items())) for rec in records)


def emit_with_tracer(record):
    """Allowlisted miss: telemetry outside canonical construction."""
    get_tracer().count("records.emitted")
    return record


def canonical_clean(record):
    """Allowlisted miss: not a canonical constructor by name."""
    return dict(record)
