"""REP002 fixture: the sanctioned seed-coercion module is allowlisted —
the unseeded call below must produce no finding."""

import numpy as np


def make_rng(seed=None):
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(seed)
