"""REP003 fixture: callables crossing the process boundary."""

import json
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor


def execute_cell(payload):
    """Module-level: picklable by reference."""
    return payload


class Sink:
    def emit(self):
        return None


def run(pending):
    with ProcessPoolExecutor() as pool:
        pool.submit(execute_cell, 1)  # allowlisted miss: module-level def

        pool.submit(lambda: 1)  # positive: lambda

        def local_cell():
            return 2

        pool.submit(local_cell)  # positive: locally-defined closure

        pool.map(json.dumps, pending)  # allowlisted miss: module.function

        sink = Sink()
        pool.submit(sink.emit)  # positive: bound method

        # repro: allow[REP003] fixture: demo of an inline suppression
        pool.submit(lambda: 3)

    multiprocessing.Process(target=lambda: None)  # positive: Process target

    threading.Thread(target=lambda: None)  # allowlisted miss: threads don't pickle
