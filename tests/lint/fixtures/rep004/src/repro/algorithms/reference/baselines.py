"""REP004 fixture: the preserved-reference side of the contract."""


def reference_covered(instance):
    return None


def reference_nocorpus(instance):
    return None


NAIVE_REFERENCES = {
    "covered": reference_covered,
    "nocorpus": reference_nocorpus,
}
