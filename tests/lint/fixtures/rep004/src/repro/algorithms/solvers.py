"""REP004 fixture: registered algorithms vs the coverage contract."""

from repro.algorithms.registry import register


@register("covered")
def solve_covered(instance):
    """Covered: reference pair + corpus entry — no finding."""


@register("missing")
def solve_missing(instance):
    """Positive: registered, in the corpus, but no reference pair."""


# repro: exempt[REP004] fixture: declared exemption — no kernel port exists
@register("exempted")
def solve_exempted(instance):
    """Exempt from the reference-pair check (still needs corpus entry)."""


@register("nocorpus")
def solve_nocorpus(instance):
    """Positive: has a reference pair but no differential-corpus entry."""
