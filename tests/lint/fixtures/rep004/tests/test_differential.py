"""REP004 fixture: the differential-corpus side of the contract.

(Never collected by pytest — ``tests/lint/conftest.py`` ignores the
fixture corpus; the basename only matters to the rule's path pattern.)
"""

FAST_ALGORITHMS = ("covered", "missing")

EXPENSIVE_ALGORITHMS = ("exempted",)
