"""REP005 fixture: exception handling in runner code."""


def drain(queue):
    while True:
        try:
            queue.get_nowait()
        except:  # positive: bare except
            break


def swallow(cell):
    try:
        cell()
    except Exception:  # positive: broad + do-nothing body
        pass


def convert(cell):
    """Allowlisted miss: the error becomes an ERROR record."""
    try:
        cell()
    except Exception as exc:
        return {"status": "error", "error": str(exc)}
    return {"status": "ok"}


def narrow(cell):
    """Allowlisted miss: narrowed to the expected type."""
    try:
        cell()
    except ValueError:
        pass


def teardown(queue):
    try:
        queue.put(None)
    # repro: allow[REP005] fixture: demo of an inline suppression
    except Exception:
        pass
