"""Baseline mechanics: content matching, staleness, the shrink ratchet,
and the baseline-hit path through ``run_lint``."""

from pathlib import Path

from repro.lint import Baseline, BaselineEntry, run_lint
from repro.lint.baseline import guard_shrink_only
from repro.lint.diagnostics import Finding
from repro.lint.engine import collect_files

FIXTURES = Path(__file__).parent / "fixtures"


def finding(rule="REP005", path="src/repro/runner/x.py", line=10,
            snippet="except Exception:"):
    return Finding(
        rule=rule, path=path, line=line, col=0,
        message="m", hint="h", snippet=snippet,
    )


def entry(rule="REP005", path="src/repro/runner/x.py", line=10,
          snippet="except Exception:", justification="why"):
    return BaselineEntry(
        rule=rule, path=path, line=line, snippet=snippet,
        justification=justification,
    )


def test_roundtrip(tmp_path):
    baseline = Baseline([entry()])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert [e.key() for e in loaded.entries] == [entry().key()]
    assert loaded.entries[0].justification == "why"


def test_match_survives_line_drift():
    # Matching is content-based: the entry recorded line 10, the file
    # has since shifted and the finding is now at line 42.
    baseline = Baseline([entry(line=10)])
    baselined, active, stale = baseline.match([finding(line=42)])
    assert len(baselined) == 1 and not active and not stale


def test_match_is_countwise():
    # One entry silences at most one of two identical findings.
    baseline = Baseline([entry()])
    baselined, active, stale = baseline.match(
        [finding(line=10), finding(line=20)]
    )
    assert len(baselined) == 1
    assert len(active) == 1
    assert not stale


def test_stale_entries_are_reported():
    baseline = Baseline([entry(), entry(path="src/repro/runner/gone.py")])
    baselined, active, stale = baseline.match([finding()])
    assert len(baselined) == 1 and not active
    assert [e.path for e in stale] == ["src/repro/runner/gone.py"]


def test_guard_shrink_only():
    prev = Baseline([entry(), entry(path="src/repro/runner/old.py")])
    shrunk = Baseline([entry()])
    grown = Baseline([entry(), entry(path="src/repro/runner/new.py")])
    assert guard_shrink_only(shrunk, prev) == []
    assert [e.path for e in guard_shrink_only(grown, prev)] == [
        "src/repro/runner/new.py"
    ]
    # Equal baselines pass trivially.
    assert guard_shrink_only(prev, prev) == []


def test_run_lint_baseline_hit():
    """A baseline built from a fixture's findings silences exactly them."""
    root = FIXTURES / "rep005"
    files = [p for _, p in collect_files([root], root=root)]
    first = run_lint(files, root=root, baseline=None)
    active = [d.finding for d in first.active]
    assert active  # the fixture has true positives

    baseline = Baseline.from_findings(active, justification="fixture test")
    second = run_lint(files, root=root, baseline=baseline)
    assert second.exit_code == 0
    baselined = [d for d in second.diagnostics if d.status == "baselined"]
    assert len(baselined) == len(active)
    assert all(d.reason == "fixture test" for d in baselined)
    assert not second.stale_baseline


def test_repo_baseline_is_valid_and_justified():
    """The committed baseline parses and every entry carries a reason."""
    repo_baseline = Path(__file__).resolve().parents[2] / ".repro-lint-baseline.json"
    baseline = Baseline.load(repo_baseline)
    for e in baseline.entries:
        assert e.justification.strip(), f"unjustified baseline entry: {e.key()}"
        assert e.rule.startswith("REP")
