"""End-to-end CLI tests: ``python -m repro lint`` as CI runs it.

Includes the meta-test (the real tree lints clean) and the planting
tests from the acceptance criteria: deliberately introducing a
tick-discipline, pickling-safety, or registry-coverage violation in a
scratch tree must turn the exit code red.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_lint_cli(*args, cwd=REPO_ROOT):
    import os

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *map(str, args)],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_meta_repo_lints_clean():
    """`python -m repro lint src tests` exits 0 on the committed tree."""
    proc = run_lint_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_list_rules():
    proc = run_lint_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
        assert rule_id in proc.stdout


def test_lint_appears_in_repro_help():
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "lint" in proc.stdout


def test_json_format_is_stable_schema():
    target = FIXTURES / "rep005" / "src" / "repro" / "runner" / "swallow.py"
    proc = run_lint_cli("--format", "json", "--no-baseline", target)
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["version"] == 1
    assert report["summary"]["active"] == 2
    assert {f["rule"] for f in report["findings"]} == {"REP005"}


def test_unknown_rule_is_usage_error():
    proc = run_lint_cli("--rule", "REP999", "src")
    assert proc.returncode == 2
    assert "REP999" in proc.stderr


def test_planted_fraction_arithmetic_fails(tmp_path):
    plant = tmp_path / "core" / "dispatch.py"
    plant.parent.mkdir(parents=True)
    plant.write_text(
        textwrap.dedent(
            """\
            from fractions import Fraction

            def advance(state, delta):
                return state.clock + Fraction(delta, state.scale)
            """
        )
    )
    proc = run_lint_cli("--no-baseline", plant)
    assert proc.returncode == 1
    assert "REP001" in proc.stdout


def test_planted_lambda_submit_fails(tmp_path):
    plant = tmp_path / "src" / "repro" / "runner" / "backends" / "pool.py"
    plant.parent.mkdir(parents=True)
    plant.write_text(
        textwrap.dedent(
            """\
            def run(pool, cells):
                return [pool.submit(lambda c=c: c()) for c in cells]
            """
        )
    )
    proc = run_lint_cli("--no-baseline", plant)
    assert proc.returncode == 1
    assert "REP003" in proc.stdout


def test_planted_unregistered_reference_fails(tmp_path):
    tree = tmp_path / "plant"
    algo = tree / "src" / "repro" / "algorithms"
    (algo / "reference").mkdir(parents=True)
    (tree / "tests").mkdir(parents=True)
    (algo / "planted.py").write_text(
        textwrap.dedent(
            """\
            from repro.algorithms.registry import register

            @register("planted")
            def solve(instance):
                return None
            """
        )
    )
    (algo / "reference" / "refs.py").write_text("NAIVE_REFERENCES = {}\n")
    (tree / "tests" / "test_differential.py").write_text(
        'FAST_ALGORITHMS = ("planted",)\n'
    )
    proc = run_lint_cli("--no-baseline", "--rule", "REP004", tree)
    assert proc.returncode == 1
    assert "REP004" in proc.stdout
    assert "'planted'" in proc.stdout


def test_write_baseline_then_clean(tmp_path):
    plant = tmp_path / "src" / "repro" / "runner" / "swallow.py"
    plant.parent.mkdir(parents=True)
    plant.write_text(
        textwrap.dedent(
            """\
            def run(cell):
                try:
                    cell()
                except Exception:
                    pass
            """
        )
    )
    baseline = tmp_path / "baseline.json"
    wrote = run_lint_cli("--write-baseline", "--baseline", baseline, plant)
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    assert baseline.exists()

    clean = run_lint_cli("--baseline", baseline, plant)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "1 baselined" in clean.stdout


def test_baseline_guard_ratchet(tmp_path):
    current = tmp_path / "current.json"
    previous = tmp_path / "previous.json"
    entry = {
        "rule": "REP005",
        "path": "src/repro/runner/x.py",
        "line": 1,
        "snippet": "except Exception:",
        "justification": "why",
    }
    previous.write_text(json.dumps({"version": 1, "findings": []}))
    current.write_text(json.dumps({"version": 1, "findings": [entry]}))
    grown = run_lint_cli("--baseline", current, "--baseline-guard", previous)
    assert grown.returncode == 1
    assert "ratchet" in grown.stderr

    shrunk = run_lint_cli("--baseline", previous, "--baseline-guard", current)
    assert shrunk.returncode == 0
