"""Per-rule tests over the deliberate-violation fixture corpus.

Each fixture tree under ``tests/lint/fixtures/repNNN/`` mirrors the
real layout (``core/dispatch.py``, ``src/repro/runner/...``) so rule
scope patterns match it unmodified; every rule must produce exactly
its expected true positives, honour the inline suppression, and stay
silent on the allowlisted near-misses that share the file.
"""

import json
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rules, rule_ids, run_lint
from repro.lint.engine import collect_files

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden" / "fixtures.json"


def lint_fixture(subdir, rule=None):
    """Lint one fixture tree; relpaths are rooted at the tree itself."""
    root = FIXTURES / subdir
    files = [p for _, p in collect_files([root], root=root)]
    rules = get_rules([rule]) if rule else None
    return run_lint(files, root=root, rules=rules, baseline=None)


def by_status(report):
    active = [d.finding for d in report.diagnostics if d.status == "active"]
    suppressed = [d.finding for d in report.diagnostics if d.status == "suppressed"]
    return active, suppressed


class TestRep001TickDiscipline:
    def test_hot_path_fraction_is_flagged(self):
        active, suppressed = by_status(lint_fixture("rep001", "REP001"))
        dispatch = [f for f in active if "dispatch.py" in f.path]
        assert [f.line for f in dispatch] == [16]
        assert "Fraction" in dispatch[0].message

    def test_inline_allow_suppresses(self):
        active, suppressed = by_status(lint_fixture("rep001", "REP001"))
        assert [f.line for f in suppressed] == [21]

    def test_boundaries_are_allowlisted(self):
        # Constant-arg Fraction(5, 3), the to_dict body, and the
        # @property accessor in the same file must produce nothing.
        active, suppressed = by_status(lint_fixture("rep001", "REP001"))
        dispatch = [
            f for f in active + suppressed if "dispatch.py" in f.path
        ]
        assert {f.line for f in dispatch} == {16, 21}

    def test_arraykernel_is_in_scope(self):
        # A Fraction planted in core/arraykernel/ turns the lint red:
        # the array kernel carries the same tick discipline as
        # core/dispatch.py (its constant-rational and serialization
        # allowlists included).
        active, _ = by_status(lint_fixture("rep001", "REP001"))
        planted = [f for f in active if "arraykernel" in f.path]
        assert [f.line for f in planted] == [13]
        from repro.lint.rules.rep001_ticks import TickDisciplineRule

        rule = TickDisciplineRule()
        assert rule.applies_to("src/repro/core/arraykernel/busy.py")
        assert rule.applies_to("src/repro/core/arraykernel/frontier.py")


class TestRep002Determinism:
    def test_positives(self):
        active, _ = by_status(lint_fixture("rep002", "REP002"))
        emit = [f for f in active if "emit.py" in f.path]
        assert [f.line for f in emit] == [12, 22, 27, 42]
        messages = " ".join(f.message for f in emit)
        assert "time.time" in messages
        assert "random.random" in messages
        assert "default_rng" in messages
        assert "bare set" in messages

    def test_inline_allow_suppresses(self):
        _, suppressed = by_status(lint_fixture("rep002", "REP002"))
        assert [f.line for f in suppressed] == [17]

    def test_rng_module_is_allowlisted(self):
        report = lint_fixture("rep002", "REP002")
        assert not any(
            "util/rng.py" in d.finding.path for d in report.diagnostics
        )

    def test_obs_layer_is_order_sensitive(self):
        # The scope extension of the observability layer: a bare-set
        # iteration planted in src/repro/obs/ turns the lint red.
        active, _ = by_status(lint_fixture("rep002", "REP002"))
        obs = [f for f in active if "obs/export.py" in f.path]
        assert [f.line for f in obs] == [6]
        assert "bare set" in obs[0].message
        from repro.lint.rules.rep002_determinism import DeterminismRule

        rule = DeterminismRule()
        assert rule.applies_to("src/repro/obs/tracer.py")
        assert rule.applies_to("src/repro/obs/export.py")

    def test_no_obs_symbol_inside_canonical_construction(self):
        # The volatility contract: any repro.obs symbol referenced (or
        # lazily imported) inside canonical_dict/canonical_stream is a
        # violation — telemetry never enters canonical record output.
        active, _ = by_status(lint_fixture("rep002", "REP002"))
        records = [f for f in active if "records.py" in f.path]
        assert [f.line for f in records] == [8, 16, 18]
        messages = " ".join(f.message for f in records)
        assert "canonical_dict" in messages
        assert "canonical_stream" in messages
        assert "get_tracer" in messages
        # Telemetry *outside* the canonical constructors (and functions
        # merely named canonical_*) stays unflagged.
        assert all(f.line not in (25, 31) for f in records)


class TestRep003PicklingSafety:
    def test_positives(self):
        active, _ = by_status(lint_fixture("rep003", "REP003"))
        assert [f.line for f in active] == [23, 28, 33, 38]

    def test_inline_allow_suppresses(self):
        _, suppressed = by_status(lint_fixture("rep003", "REP003"))
        assert [f.line for f in suppressed] == [36]

    def test_module_level_and_threads_pass(self):
        # pool.submit(execute_cell, ...), pool.map(json.dumps, ...) and
        # threading.Thread(target=lambda) must not be flagged.
        active, suppressed = by_status(lint_fixture("rep003", "REP003"))
        flagged = {f.line for f in active} | {f.line for f in suppressed}
        assert flagged.isdisjoint({21, 30, 40})

    def test_batched_worker_entry_is_in_scope(self):
        # The batched cell entry (execute_cells) and the shard worker
        # both live under runner/ — anything they hand across a process
        # boundary stays covered by the pickling contract.
        from repro.lint.rules.rep003_pickling import PicklingSafetyRule

        rule = PicklingSafetyRule()
        assert rule.applies_to("src/repro/runner/backends/base.py")
        assert rule.applies_to("src/repro/runner/backends/sharded.py")


class TestRep004RegistryCoverage:
    def test_missing_reference_and_missing_corpus(self):
        active, _ = by_status(lint_fixture("rep004", "REP004"))
        assert len(active) == 2
        by_message = {f.message: f for f in active}
        assert any("'missing'" in m and "reference" in m for m in by_message)
        assert any("'nocorpus'" in m and "corpus" in m for m in by_message)

    def test_covered_and_exempted_pass(self):
        active, _ = by_status(lint_fixture("rep004", "REP004"))
        assert not any("'covered'" in f.message for f in active)
        assert not any("'exempted'" in f.message for f in active)


class TestRep005ExceptionHygiene:
    def test_positives(self):
        active, _ = by_status(lint_fixture("rep005", "REP005"))
        assert [f.line for f in active] == [8, 15]

    def test_inline_allow_suppresses(self):
        _, suppressed = by_status(lint_fixture("rep005", "REP005"))
        assert [f.line for f in suppressed] == [40]

    def test_narrow_and_converting_handlers_pass(self):
        # `except ValueError: pass` and the handler that returns an
        # ERROR record are both fine.
        active, suppressed = by_status(lint_fixture("rep005", "REP005"))
        flagged = {f.line for f in active} | {f.line for f in suppressed}
        assert flagged.isdisjoint({23, 32})


def test_golden_diagnostics():
    """The full fixture corpus reproduces the committed golden report."""
    files = [p for _, p in collect_files([FIXTURES], root=FIXTURES)]
    report = run_lint(files, root=FIXTURES, baseline=None)
    assert json.loads(report.to_json()) == json.loads(GOLDEN.read_text())


def test_rule_registry():
    assert rule_ids() == ["REP001", "REP002", "REP003", "REP004", "REP005"]
    assert [r.id for r in all_rules()] == rule_ids()
    with pytest.raises(KeyError):
        get_rules(["REP999"])


def test_rules_have_docs_and_hints():
    for rule in all_rules():
        assert rule.title
        assert rule.contract
        assert rule.hint
