"""Shared capability markers.

The suite must pass on a numpy-free (and therefore scipy-free)
interpreter: the array kernel and the seeded RNG degrade to stdlib
implementations with identical behavior, while the MILP-backed solvers
(``exact`` past the branch-and-bound size cutoff, ``exact_milp``, the
EPTAS window IP) declare a ``PreconditionError``.  Tests that *require*
the MILP backend carry ``needs_milp`` and skip on that leg; tests that
require numpy itself (the PCG64 cross-checks) carry ``needs_numpy``.
"""

from __future__ import annotations

import pytest

from repro.core.arraykernel import HAVE_NUMPY
from repro.ptas.ip import _HAVE_MILP

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed"
)
needs_milp = pytest.mark.skipif(
    not _HAVE_MILP, reason="scipy.optimize.milp unavailable"
)
