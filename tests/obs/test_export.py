"""Exporter tests: summarize, phase totals and the Chrome trace-event
format (the ``repro trace`` CLI's engine).

The Chrome export contract is structural: a Perfetto/chrome://tracing
loadable JSON object with ``traceEvents`` — ``"M"`` process-name
metadata, ``"X"`` complete events with microsecond ``ts``/``dur``, and
one final ``"i"`` instant event carrying the metrics snapshot.
"""

import json
from fractions import Fraction

import repro
from repro.obs import (
    Tracer,
    chrome_trace,
    load_trace,
    phase_totals,
    set_tracer,
    summarize_trace,
    trace_scope,
    write_chrome_trace,
)
from repro.workloads import generate


def _sample_trace(tmp_path):
    with trace_scope(tmp_path / "t.trace.jsonl") as tracer:
        with tracer.span("solve", instance="demo"):
            with tracer.span("eptas.classify"):
                pass
        tracer.count("kernel.placements", 9)
        tracer.gauge("service.queue_depth", 2)
        tracer.latency("service.request_ms", 12.5)
    return load_trace(tmp_path / "t.trace.jsonl")


def _validate_chrome_schema(doc):
    """Structural validation of trace-event JSON (the CI schema check)."""
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    phases = {"M", "X", "i"}
    pids = set()
    for event in events:
        assert event["ph"] in phases
        assert isinstance(event["pid"], int)
        pids.add(event["pid"])
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            assert "name" in event["args"]
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert isinstance(event["name"], str)
        if event["ph"] == "i":
            assert event["s"] == "g"
    # Every pid used by an event has a process_name metadata entry.
    named = {e["pid"] for e in events if e["ph"] == "M"}
    assert pids <= named


class TestSummarize:
    def test_sections_present(self, tmp_path):
        trace = _sample_trace(tmp_path)
        text = summarize_trace(trace)
        assert "solve" in text
        assert "kernel.placements" in text
        assert "service.queue_depth" in text
        assert "service.request_ms" in text

    def test_empty_trace(self):
        text = summarize_trace(
            {"events": [], "counters": {}, "gauges": {}, "latency_ms": {}}
        )
        assert "(no spans)" in text

    def test_phase_totals_prefix_filter(self, tmp_path):
        trace = _sample_trace(tmp_path)
        totals = phase_totals(trace["events"], prefix="eptas.")
        assert set(totals) == {"eptas.classify"}
        assert totals["eptas.classify"]["count"] == 1


class TestChromeExport:
    def test_schema(self, tmp_path):
        trace = _sample_trace(tmp_path)
        _validate_chrome_schema(chrome_trace(trace))

    def test_write_is_valid_json(self, tmp_path):
        trace = _sample_trace(tmp_path)
        out = tmp_path / "chrome.json"
        write_chrome_trace(trace, out)
        _validate_chrome_schema(json.loads(out.read_text()))

    def test_eptas_solve_shows_per_guess_ip_spans(self, tmp_path):
        # The acceptance criterion: a Chrome export of an EPTAS solve
        # contains the per-guess window-IP spans.
        inst = generate("small_jobs", 2, 8, 0)
        path = tmp_path / "eptas.trace.jsonl"
        with trace_scope(path):
            repro.solve(
                inst,
                algorithm="eptas",
                epsilon=Fraction(1, 2),
                mode="augmentation",
            )
        doc = chrome_trace(load_trace(path))
        _validate_chrome_schema(doc)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "eptas.ip_solve" in names
        assert "eptas.classify" in names
        assert "eptas.solve" in names

    def test_shard_processes_get_own_pids(self):
        events = [
            {"name": "a", "ts": 0.0, "dur": 1.0, "depth": 0,
             "proc": "main", "shard": None},
            {"name": "b", "ts": 0.5, "dur": 0.2, "depth": 0,
             "proc": "shard-1", "shard": 1},
        ]
        doc = chrome_trace(
            {"events": events, "counters": {}, "gauges": {},
             "latency_ms": {}}
        )
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["a"]["pid"] != xs["b"]["pid"]
        assert xs["a"]["pid"] == 1  # "main" is always process 1


class TestTracedSolveCounters:
    def test_solve_promotes_kernel_counters(self):
        inst = generate("uniform", 4, 12, 0)
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            result = repro.solve(inst, algorithm="class_greedy")
        finally:
            set_tracer(previous)
        shim = result.stats.get("kernel", result.stats.get("dispatch"))
        assert shim is not None
        for key, value in shim.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            assert tracer.counters[f"kernel.{key}"] == value
