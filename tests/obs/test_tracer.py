"""Unit tests for the tracing/metrics core (:mod:`repro.obs.tracer`).

The load-bearing contracts: the null tracer is a shared no-op
singleton (the production default), span events use the monotonic
clock relative to the tracer epoch, counters/gauges/latencies are
bounded, and the ``REPRO_TRACE`` environment knob resolves exactly as
documented.
"""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_ENV,
    Tracer,
    get_tracer,
    merge_sidecar,
    percentiles,
    set_tracer,
    sidecar_path,
    trace_scope,
    tracing_enabled,
    worker_trace_scope,
)
from repro.obs.tracer import _NULL_SPAN, _tracer_from_env


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", key="value"):
            NULL_TRACER.count("c")
            NULL_TRACER.gauge("g", 1.5)
            NULL_TRACER.latency("l", 3.0)
            NULL_TRACER.add_counters("k", {"a": 1})
        assert NULL_TRACER.snapshot() == {}

    def test_span_returns_shared_noop_handle(self):
        # One shared context-manager instance: the disabled path
        # allocates nothing per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b") is _NULL_SPAN

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("boom")

    def test_default_active_tracer_is_null(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert _tracer_from_env() is NULL_TRACER


class TestTracer:
    def test_spans_nest_with_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        names = {e["name"]: e for e in tracer.events}
        assert names["outer"]["depth"] == 0
        assert names["inner"]["depth"] == 1
        assert names["inner"]["args"] == {"detail": 1}
        assert names["inner"]["ts"] >= names["outer"]["ts"] >= 0
        assert names["outer"]["dur"] >= names["inner"]["dur"] >= 0

    def test_span_flags_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (event,) = tracer.events
        assert event["args"]["error"] is True
        assert tracer._depth == 0  # depth restored after the raise

    def test_counters_gauges_latencies(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4)
        tracer.gauge("depth", 2)
        tracer.gauge("depth", 7)
        tracer.latency("req", 10.0)
        tracer.latency("req", 20.0)
        snap = tracer.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["gauges"]["depth"] == 7  # last write wins
        assert snap["latency_ms"]["req"]["count"] == 2

    def test_add_counters_skips_non_numeric_and_bools(self):
        tracer = Tracer()
        tracer.add_counters(
            "kernel",
            {"steps": 3, "impl": "array", "flag": True, "rate": 0.5},
        )
        assert tracer.counters == {"kernel.steps": 3, "kernel.rate": 0.5}

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.events) == 2
        assert tracer.counters["obs.dropped_spans"] == 3

    def test_latency_samples_are_bounded(self):
        from repro.obs.tracer import MAX_LATENCY_SAMPLES

        tracer = Tracer()
        for i in range(MAX_LATENCY_SAMPLES + 10):
            tracer.latency("req", float(i))
        assert len(tracer.latencies["req"]) == MAX_LATENCY_SAMPLES
        # FIFO: the oldest samples were evicted.
        assert tracer.latencies["req"][0] == 10.0

    def test_dump_round_trips_through_load(self, tmp_path):
        from repro.obs import load_trace

        tracer = Tracer()
        with tracer.span("work", tag="x"):
            tracer.count("c", 2)
        path = tmp_path / "t.trace.jsonl"
        tracer.dump(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[-1]["type"] == "metrics"
        trace = load_trace(path)
        assert [e["name"] for e in trace["events"]] == ["work"]
        assert trace["counters"] == {"c": 2}


class TestScopes:
    def test_trace_scope_installs_and_restores(self):
        before = get_tracer()
        with trace_scope() as tracer:
            assert get_tracer() is tracer
            assert tracing_enabled()
        assert get_tracer() is before

    def test_trace_scope_dumps_to_path(self, tmp_path):
        path = tmp_path / "scope.trace.jsonl"
        with trace_scope(path) as tracer:
            with tracer.span("inside"):
                pass
        assert path.exists()
        data = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(rec.get("name") == "inside" for rec in data)

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            assert set_tracer(previous) is tracer


class TestEnvResolution:
    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsy_values_resolve_to_null(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert _tracer_from_env() is NULL_TRACER

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_enable_in_memory_tracing(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        tracer = _tracer_from_env()
        assert tracer.enabled
        assert isinstance(tracer, Tracer)

    def test_path_value_enables_tracing(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path / "env.trace.jsonl"))
        tracer = _tracer_from_env()
        assert tracer.enabled


class TestSidecars:
    def test_sidecar_path_shape(self, tmp_path):
        path = sidecar_path(tmp_path, 7)
        assert path.name == "shard-007.trace.jsonl"

    def test_worker_scope_streams_and_merge_folds_back(self, tmp_path):
        parent = Tracer()
        previous = set_tracer(parent)
        try:
            side = sidecar_path(tmp_path, 0)
            with worker_trace_scope(side, shard=0) as worker:
                assert worker.enabled
                with worker.span("sweep.cell", instance="i0"):
                    worker.count("kernel.placements", 3)
            assert side.exists()
            merged = merge_sidecar(parent, side)
        finally:
            set_tracer(previous)
        assert merged == 1
        (event,) = parent.events
        assert event["name"] == "sweep.cell"
        assert event["proc"] == "shard-0"
        assert parent.counters["kernel.placements"] == 3

    def test_worker_scope_is_noop_when_parent_disabled(self, tmp_path):
        previous = set_tracer(NULL_TRACER)
        try:
            side = sidecar_path(tmp_path, 1)
            with worker_trace_scope(side, shard=1) as worker:
                assert worker.enabled is False
            assert not side.exists()
        finally:
            set_tracer(previous)

    def test_merge_sidecar_missing_file_is_noop(self, tmp_path):
        tracer = Tracer()
        assert merge_sidecar(tracer, tmp_path / "absent.jsonl") == 0
        assert tracer.events == []


class _CountingNullTracer:
    """Disabled-path probe: counts every tracer touch, records nothing."""

    enabled = False

    def __init__(self):
        self.touches = 0

    def span(self, name, **args):
        self.touches += 1
        return _NULL_SPAN

    def count(self, name, value=1):
        self.touches += 1

    def gauge(self, name, value):
        self.touches += 1

    def latency(self, name, ms):
        self.touches += 1

    def add_counters(self, prefix, counters):
        self.touches += 1

    def snapshot(self):
        return {}


class TestDisabledPathBudget:
    """The ≤2% overhead budget, enforced deterministically.

    Wall-clock gates flake on shared runners, but the budget's real
    invariant is structural: instrumentation touches the (disabled)
    tracer O(1) times per solve / per sweep cell — never per job, per
    heap pop, or per placement.  Counting touches is noise-free.
    """

    def _touches_for_solve(self, n, algorithm):
        import repro
        from repro.workloads import generate

        tracer = _CountingNullTracer()
        previous = set_tracer(tracer)
        try:
            repro.solve(generate("uniform", 4, n, 0), algorithm=algorithm)
        finally:
            set_tracer(previous)
        return tracer.touches

    @pytest.mark.parametrize(
        "algorithm", ["three_halves", "merge_lpt", "class_greedy"]
    )
    def test_tracer_touches_constant_in_instance_size(self, algorithm):
        small = self._touches_for_solve(200, algorithm)
        large = self._touches_for_solve(2000, algorithm)
        assert small == large, (
            f"tracer touches scale with n ({small} -> {large}): "
            "per-operation instrumentation on a kernel hot path"
        )
        assert small <= 8  # a handful per solve, not per job

    def test_sweep_cell_touches_constant_in_instance_size(self, tmp_path):
        from repro.runner import InstanceRepository, WorkPlan, run_plan

        def touches(size):
            repo = InstanceRepository.from_families(
                ["uniform"], [3], [size], [0]
            )
            plan = WorkPlan.from_product(repo, ["three_halves"])
            tracer = _CountingNullTracer()
            previous = set_tracer(tracer)
            try:
                run_plan(
                    plan,
                    tmp_path / f"s{size}.jsonl",
                    repository=repo,
                )
            finally:
                set_tracer(previous)
            return tracer.touches

        assert touches(8) == touches(64)


class TestPercentiles:
    def test_empty(self):
        assert percentiles([]) == {"count": 0}

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        stats = percentiles(samples)
        assert stats["count"] == 100
        assert stats["p50"] == 50.0
        assert stats["p90"] == 90.0
        assert stats["p99"] == 99.0
        assert stats["max"] == 100.0

    def test_single_sample(self):
        stats = percentiles([7.0])
        assert stats["p50"] == stats["p99"] == stats["max"] == 7.0
