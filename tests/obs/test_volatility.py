"""The volatility contract, end to end: telemetry never changes what
the system *computes* or *records*.

Two sweeps of one plan — tracing off and tracing on — must produce
byte-identical canonical record streams, on the serial backend and on
the sharded backend (where enabled tracing additionally streams
per-shard sidecar files that get merged and cleaned up).
"""

import pytest

from repro.obs import NULL_TRACER, get_tracer, set_tracer, trace_scope
from repro.runner import (
    InstanceRepository,
    WorkPlan,
    canonical_stream,
    read_records,
    run_plan,
)


def _plan():
    repo = InstanceRepository.from_families(
        ["uniform"], [3], [8], [0, 1, 2]
    )
    plan = WorkPlan.from_product(
        repo, ["three_halves", "merge_lpt"], defer_payloads=True
    )
    return repo, plan


def _sweep(out, backend=None, **kwargs):
    repo, plan = _plan()
    result = run_plan(
        plan, out, repository=repo, backend=backend, **kwargs
    )
    return canonical_stream(result.records)


class TestCanonicalByteEquality:
    def test_serial_sweep_identical_with_and_without_tracing(
        self, tmp_path
    ):
        previous = set_tracer(NULL_TRACER)
        try:
            untraced = _sweep(tmp_path / "untraced.jsonl")
        finally:
            set_tracer(previous)
        with trace_scope(tmp_path / "run.trace.jsonl") as tracer:
            traced = _sweep(tmp_path / "traced.jsonl")
            assert tracer.events, "tracing was on but recorded nothing"
        assert traced == untraced

    def test_sharded_sweep_identical_and_sidecars_cleaned_up(
        self, tmp_path
    ):
        previous = set_tracer(NULL_TRACER)
        try:
            untraced = _sweep(
                tmp_path / "untraced.jsonl", backend="sharded", shards=2
            )
        finally:
            set_tracer(previous)
        with trace_scope(tmp_path / "shard.trace.jsonl") as tracer:
            traced = _sweep(
                tmp_path / "traced.jsonl", backend="sharded", shards=2
            )
            # Worker spans were merged back from the shard sidecars,
            # including the worker-side repository fetches.
            procs = {e["proc"] for e in tracer.events}
            assert any(proc.startswith("shard-") for proc in procs)
            assert "sweep.fetch" in [e["name"] for e in tracer.events]
        assert traced == untraced
        # Sidecar trace files are gone after the merge.
        assert not list(tmp_path.glob("**/shard-*.trace.jsonl"))

    def test_result_files_canonicalize_identically(self, tmp_path):
        # The on-disk record files differ only in volatile fields
        # (wall_time and friends); their canonical projections are
        # byte-for-byte equal.
        previous = set_tracer(NULL_TRACER)
        try:
            _sweep(tmp_path / "a.jsonl")
        finally:
            set_tracer(previous)
        with trace_scope(tmp_path / "b.trace.jsonl"):
            _sweep(tmp_path / "b.jsonl")
        a = canonical_stream(read_records(tmp_path / "a.jsonl"))
        b = canonical_stream(read_records(tmp_path / "b.jsonl"))
        assert a.encode() == b.encode()


class TestTracedSweepTelemetry:
    def test_cell_spans_and_resume_counter(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        with trace_scope(tmp_path / "one.trace.jsonl") as tracer:
            _sweep(out)
            names = [e["name"] for e in tracer.events]
            assert "sweep.run_plan" in names
            assert "sweep.cell" in names
            assert "sweep.solve" in names
            assert "sweep.emit" in names
            assert tracer.counters.get("sweep.resume_cache_hits", 0) == 0
        # Resuming the same sweep: every cell is a cache hit.
        with trace_scope(tmp_path / "two.trace.jsonl") as tracer:
            _sweep(out)
            assert tracer.counters["sweep.resume_cache_hits"] == 6
            assert "sweep.cell" not in [e["name"] for e in tracer.events]

    def test_kernel_counters_promoted_per_cell(self, tmp_path):
        with trace_scope(tmp_path / "k.trace.jsonl") as tracer:
            _sweep(tmp_path / "sweep.jsonl")
            kernel_keys = [
                key for key in tracer.counters if key.startswith("kernel.")
            ]
            assert kernel_keys, "no kernel counters promoted by the cells"


def test_active_tracer_restored_even_when_sweep_raises(tmp_path):
    before = get_tracer()
    with pytest.raises(FileNotFoundError):
        with trace_scope(tmp_path / "x.trace.jsonl"):
            InstanceRepository.from_directory(tmp_path / "missing-dir")
    assert get_tracer() is before
