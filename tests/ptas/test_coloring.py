"""Tests for interval coloring of windows into machine patterns."""

import pytest

from repro.core.errors import InfeasibleError
from repro.ptas.coloring import color_windows
from repro.ptas.ip import WindowAssignment


def _assignment(wins):
    wa = WindowAssignment()
    for cid, window in wins:
        wa.windows.setdefault(cid, []).append(window)
    return wa


class TestColoring:
    def test_disjoint_windows_share_machine(self):
        wa = _assignment([(0, (0, 2)), (1, (2, 2))])
        colored = color_windows(wa, num_layers=4, num_machines=1)
        assert {c[3] for c in colored} == {0}

    def test_overlapping_windows_split(self):
        wa = _assignment([(0, (0, 3)), (1, (1, 3))])
        colored = color_windows(wa, num_layers=4, num_machines=2)
        machines = {c[3] for c in colored}
        assert len(machines) == 2

    def test_capacity_violation_raises(self):
        wa = _assignment([(0, (0, 2)), (1, (0, 2)), (2, (1, 2))])
        with pytest.raises(InfeasibleError):
            color_windows(wa, num_layers=4, num_machines=2)

    def test_no_machine_overlap_in_output(self):
        wins = [
            (0, (0, 2)),
            (0, (3, 1)),
            (1, (0, 1)),
            (1, (2, 2)),
            (2, (1, 1)),
            (2, (2, 1)),
        ]
        colored = color_windows(_assignment(wins), 5, 2)
        per_machine = {}
        for cid, start, units, machine in colored:
            per_machine.setdefault(machine, []).append((start, start + units))
        for intervals in per_machine.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    def test_every_window_colored(self):
        wins = [(0, (0, 1)), (1, (0, 1)), (2, (1, 2))]
        colored = color_windows(_assignment(wins), 3, 2)
        assert len(colored) == 3
