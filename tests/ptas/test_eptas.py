"""Tests for the EPTAS driver (Theorem 14)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.errors import PreconditionError
from repro.core.instance import Instance
from repro.core.validate import validate_schedule
from repro.ptas.eptas import augmented_instance, schedule_eptas
from tests.strategies import instances, tiny_instances


def _validate(inst, result):
    extra = result.stats.get("extra_machines", 0)
    validate_schedule(augmented_instance(inst, extra), result.schedule)


class TestBasics:
    def test_empty(self):
        result = schedule_eptas(Instance([], 2))
        assert result.makespan == 0

    def test_trivial_fast_path(self):
        inst = Instance.from_class_sizes([[5, 3], [4]], 3)
        result = schedule_eptas(inst)
        assert result.makespan == 8

    def test_epsilon_validation(self):
        inst = Instance.from_class_sizes([[3], [2], [4], [1]], 2)
        with pytest.raises(PreconditionError):
            schedule_eptas(inst, epsilon=Fraction(3, 4))

    def test_stats_contents(self):
        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        result = schedule_eptas(inst, epsilon=Fraction(1, 2))
        for key in (
            "T",
            "epsilon",
            "delta",
            "mode",
            "num_layers",
            "windows",
            "extra_machines",
        ):
            assert key in result.stats


class TestModes:
    @pytest.mark.parametrize("mode", ["augmentation", "fixed_m"])
    def test_valid_schedule(self, mode):
        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2], [3, 3], [1, 1, 1, 1]], 3
        )
        result = schedule_eptas(inst, epsilon=Fraction(1, 2), mode=mode)
        _validate(inst, result)
        assert result.makespan <= result.guarantee * Fraction(
            result.lower_bound
        )

    def test_fixed_m_uses_no_extra_machines(self):
        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 2
        )
        result = schedule_eptas(inst, epsilon=Fraction(2, 5), mode="fixed_m")
        assert result.stats["extra_machines"] == 0
        assert result.schedule.num_machines == inst.num_machines

    def test_augmentation_bounded_extras(self):
        inst = Instance.from_class_sizes(
            [[4, 4, 4, 4], [16], [16], [2, 2], [1, 1], [3], [5, 5]], 4
        )
        result = schedule_eptas(
            inst, epsilon=Fraction(1, 2), mode="augmentation"
        )
        extra = result.stats["extra_machines"]
        assert extra <= int(Fraction(1, 2) * inst.num_machines)
        _validate(inst, result)


class TestQuality:
    @given(instances(max_machines=3, max_classes=5, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_valid_and_within_guarantee(self, inst):
        result = schedule_eptas(inst, epsilon=Fraction(1, 2))
        _validate(inst, result)
        if inst.num_jobs:
            assert result.makespan <= result.guarantee * Fraction(
                result.lower_bound
            )

    @given(tiny_instances(max_jobs=6, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_guess_below_opt(self, inst):
        from repro.algorithms.exact import schedule_exact

        result = schedule_eptas(inst, epsilon=Fraction(1, 2))
        opt = schedule_exact(inst).makespan
        if inst.num_jobs and not result.stats.get("fast_path"):
            assert Fraction(result.lower_bound) <= opt

    @pytest.mark.slow
    def test_quality_improves_with_epsilon(self):
        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2], [3, 3], [1, 1, 1, 1]], 3
        )
        loose = schedule_eptas(inst, epsilon=Fraction(1, 2))
        tight = schedule_eptas(inst, epsilon=Fraction(1, 4))
        assert tight.makespan <= loose.makespan

    def test_backtracking_backend(self):
        inst = Instance.from_class_sizes([[4, 4], [5], [3, 2], [2]], 2)
        result = schedule_eptas(
            inst, epsilon=Fraction(1, 2), ip_backend="backtracking"
        )
        _validate(inst, result)
