"""Tests for the Lemma 18 flow network (Figure 5)."""

import pytest

from repro.core.errors import InfeasibleError
from repro.ptas.flownet import (
    SINK,
    SOURCE,
    assign_placeholders_by_flow,
    build_flow_network,
)


class TestBuild:
    def test_structure(self):
        graph = build_flow_network(
            n_c={0: 2}, gamma={(0, 0): 1, (0, 2): 1}, k={0: 1, 1: 1, 2: 1}
        )
        assert graph.has_edge(SOURCE, ("class", 0))
        assert graph[SOURCE][("class", 0)]["capacity"] == 2
        assert graph.has_edge(("class", 0), ("layer", 0))
        assert not graph.has_edge(("class", 0), ("layer", 1))
        assert graph[("layer", 2)][SINK]["capacity"] == 1

    def test_zero_gamma_omitted(self):
        graph = build_flow_network(
            n_c={0: 1}, gamma={(0, 0): 0, (0, 1): 1}, k={0: 1, 1: 1}
        )
        assert not graph.has_edge(("class", 0), ("layer", 0))


class TestAssignment:
    def test_integral_assignment(self):
        placement = assign_placeholders_by_flow(
            n_c={0: 2, 1: 1},
            gamma={(0, 0): 1, (0, 1): 1, (1, 1): 1, (1, 2): 1},
            k={0: 1, 1: 2, 2: 1},
        )
        assert len(placement[0]) == 2
        assert len(placement[1]) == 1
        # per-class layers distinct
        for layers in placement.values():
            assert len(layers) == len(set(layers))

    def test_layer_capacity_respected(self):
        placement = assign_placeholders_by_flow(
            n_c={0: 1, 1: 1},
            gamma={(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 1},
            k={0: 1, 1: 1},
        )
        used = [l for layers in placement.values() for l in layers]
        assert sorted(used) == [0, 1]

    def test_shortfall_raises(self):
        with pytest.raises(InfeasibleError):
            assign_placeholders_by_flow(
                n_c={0: 2},
                gamma={(0, 0): 1},
                k={0: 1},
            )

    def test_tight_instance(self):
        # Exactly enough slots; classic bipartite perfect matching.
        placement = assign_placeholders_by_flow(
            n_c={0: 2, 1: 2, 2: 1},
            gamma={
                (0, 0): 1,
                (0, 1): 1,
                (0, 3): 1,
                (1, 1): 1,
                (1, 2): 1,
                (1, 4): 1,
                (2, 2): 1,
                (2, 3): 1,
            },
            k={0: 1, 1: 1, 2: 1, 3: 1, 4: 1},
        )
        used = [l for layers in placement.values() for l in layers]
        assert len(used) == 5
        assert len(set(used)) == 5
