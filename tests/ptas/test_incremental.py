"""Tests for the incremental EPTAS machinery (PR 8).

Three layers:

* the :class:`~repro.ptas.context.InstanceProfile` bisection views must
  answer the parameter-band and class-split queries *identically* to the
  full scans they replace;
* the warm-start plumbing — hint-ordered backtracking, the MILP
  constraint-block skeleton, the signature memo — must never change a
  solver verdict or the final (canonical) assignment;
* the full incremental driver must be bit-for-bit the preserved
  rebuild-per-guess reference on whole solves (the equivalence-harness
  contract), with the augmentation mode validated against the augmented
  instance.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound_int
from repro.core.errors import InfeasibleError
from repro.core.validate import validate_schedule
from repro.ptas.context import (
    GuessContext,
    InstanceProfile,
    rounded_signature,
)
from repro.ptas.eptas import (
    augmented_instance,
    eptas_guess_feasible,
    schedule_eptas,
)
from repro.ptas.ip import (
    WindowIPSkeleton,
    assignment_satisfies,
    solve_window_ip,
    solve_window_ip_backtracking,
    solve_window_ip_milp,
)
from repro.ptas.layers import round_instance
from repro.ptas.params import _class_band, choose_params, job_band
from repro.ptas.simplify import simplify
from tests.equivalence import assert_same_outcome, run_and_capture
from tests.markers import needs_milp
from tests.strategies import instances

EPS = Fraction(1, 2)


def _guess_range(inst):
    """A few makespan guesses spanning the instance's search range."""
    from repro.algorithms.three_halves import schedule_three_halves

    import math

    lb = max(lower_bound_int(inst), 1)
    ub = max(math.ceil(schedule_three_halves(inst).schedule.makespan), lb)
    mid = (lb + ub) // 2
    return sorted({lb, mid, ub})


class TestInstanceProfile:
    @given(instances(max_machines=4, max_classes=6, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_band_queries_match_scans(self, inst):
        if not inst.num_jobs:
            return
        profile = InstanceProfile(inst)
        for T in _guess_range(inst):
            for i in (1, 2, 3):
                delta = EPS**i
                mu = EPS**2 * delta
                lo, hi = mu * T, delta * T
                assert profile.band(lo, hi) == job_band(inst, lo, hi)
                assert profile.class_band(lo, hi) == _class_band(
                    inst, lo, hi
                )

    @given(instances(max_machines=4, max_classes=6, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_split_class_matches_predicates(self, inst):
        if not inst.num_jobs:
            return
        profile = InstanceProfile(inst)
        for T in _guess_range(inst):
            params = choose_params(inst, T, EPS)
            for cid, members in inst.classes.items():
                bigs, mediums, smalls = profile.split_class(cid, params, T)
                assert {j.id for j in bigs} == {
                    j.id for j in members if params.is_big(j.size, T)
                }
                assert {j.id for j in mediums} == {
                    j.id for j in members if params.is_medium(j.size, T)
                }
                assert {j.id for j in smalls} == {
                    j.id for j in members if params.is_small(j.size, T)
                }

    @given(instances(max_machines=4, max_classes=6, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_profile_hooks_change_nothing(self, inst):
        """choose_params and simplify produce identical parameters,
        group sets and loads with and without the profile."""
        if not inst.num_jobs:
            return
        profile = InstanceProfile(inst)
        for T in _guess_range(inst):
            scan_params = choose_params(inst, T, EPS)
            fast_params = choose_params(inst, T, EPS, profile=profile)
            assert scan_params == fast_params
            scan = simplify(inst, T, scan_params)
            fast = simplify(inst, T, fast_params, profile=profile)
            for attr in (
                "big_jobs",
                "placeholder_small",
                "medium_clumps",
                "removed_classes",
                "small_clumps_band",
                "small_clumps_tiny",
            ):
                a = getattr(scan, attr)
                b = getattr(fast, attr)
                assert {
                    cid: {j.id for j in jobs} for cid, jobs in a.items()
                } == {
                    cid: {j.id for j in jobs} for cid, jobs in b.items()
                }, attr


def _rounded_at(inst, T, eps=EPS, mode="augmentation"):
    params = choose_params(inst, T, eps, mode)
    return round_instance(simplify(inst, T, params))


def _solvable(inst):
    """A rounded instance at the 3/2 bound (feasible there, Theorem 14)."""
    return _rounded_at(inst, _guess_range(inst)[-1])


class TestAssignmentSatisfies:
    def test_accepts_solver_output(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        rounded = _solvable(inst)
        assignment = solve_window_ip(rounded, backend="backtracking")
        assert assignment_satisfies(rounded, assignment)

    def test_rejects_corrupted_assignment(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        rounded = _solvable(inst)
        assignment = solve_window_ip(rounded, backend="backtracking")
        cid = next(iter(assignment.windows))
        tampered = {
            c: list(ws) for c, ws in assignment.windows.items()
        }
        # Duplicate one window: per-(cid, u) counts no longer match.
        tampered[cid] = tampered[cid] + [tampered[cid][0]]
        broken = type(assignment)(windows=tampered)
        assert not assignment_satisfies(rounded, broken)

    def test_rejects_wrong_instance(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        rounded = _solvable(inst)
        assignment = solve_window_ip(rounded, backend="backtracking")
        other = _rounded_at(inst, _guess_range(inst)[0])
        if rounded_signature(other) != rounded_signature(rounded):
            assert not assignment_satisfies(other, assignment)


class TestWarmStartedSolvers:
    @given(instances(max_machines=3, max_classes=5, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_hint_preserves_backtracking_verdict(self, inst):
        """A hint reorders the branch exploration but never changes the
        feasible/infeasible verdict (the candidate *set* per node is
        unchanged, so the search stays complete)."""
        if not inst.num_jobs:
            return
        guesses = _guess_range(inst)
        hint = None
        for T in reversed(guesses):
            try:
                rounded = _rounded_at(inst, T)
            except InfeasibleError:
                continue
            cold = run_and_capture(
                lambda _i: solve_window_ip_backtracking(rounded), inst
            )
            warm = run_and_capture(
                lambda _i: solve_window_ip_backtracking(
                    rounded, hint=hint
                ),
                inst,
            )
            assert cold.raised == warm.raised
            if not warm.raised:
                assert assignment_satisfies(rounded, warm.result)
                hint = warm.result

    @needs_milp
    @given(instances(max_machines=3, max_classes=5, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_skeleton_milp_identical_to_cold(self, inst):
        """The block-assembled MILP matrix is identical with and without
        the skeleton cache, so the solver returns the same assignment."""
        if not inst.num_jobs:
            return
        skeleton = WindowIPSkeleton()
        for T in _guess_range(inst):
            try:
                rounded = _rounded_at(inst, T)
            except InfeasibleError:
                continue
            cold = run_and_capture(
                lambda _i: solve_window_ip_milp(rounded), inst
            )
            warm = run_and_capture(
                lambda _i: solve_window_ip_milp(
                    rounded, skeleton=skeleton
                ),
                inst,
            )
            assert cold.raised == warm.raised
            if not cold.raised:
                assert cold.result.windows == warm.result.windows
        if skeleton.misses:
            assert skeleton.hits + skeleton.misses > 0


class TestGuessContext:
    def _ctx(self, inst, backend="backtracking"):
        return GuessContext(
            inst, EPS, "augmentation", ip_backend=backend
        )

    def test_decide_memoizes_per_guess(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        ctx = self._ctx(inst)
        T = _guess_range(inst)[-1]
        first = ctx.decide(T)
        again = ctx.decide(T)
        assert again is first
        assert ctx.counters["guesses"] == 1
        assert ctx.counters["guess_memo_hits"] == 1
        assert ctx.counters["ip_solves"] == 1

    def test_signature_reuse_skips_solves(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2]], 3
        )
        ctx = self._ctx(inst)
        guesses = _guess_range(inst)
        bundles = {T: ctx.decide(T) for T in reversed(guesses)}
        # Any two guesses with equal signatures must have shared a solve.
        sigs = {
            T: rounded_signature(b.rounded)
            for T, b in bundles.items()
            if b is not None
        }
        distinct = len(set(sigs.values()))
        assert ctx.counters["ip_solves"] <= distinct + (
            len(bundles) - len(sigs)
        )

    def test_matches_cold_guess_decisions(self):
        """ctx.decide verdicts equal the context-free cold path for every
        guess in the search range."""
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2], [1, 1]], 2
        )
        ctx = self._ctx(inst)
        lo = _guess_range(inst)[0]
        hi = _guess_range(inst)[-1]
        for T in range(hi, lo - 1, -1):
            warm = ctx.decide(T)
            cold = eptas_guess_feasible(
                inst, T, EPS, "augmentation", ip_backend="backtracking"
            )
            assert (warm is None) == (cold is None), T
            if warm is not None:
                assert assignment_satisfies(
                    warm.rounded, warm.assignment
                )

    def test_finalize_makes_bundle_canonical(self):
        """A hinted (non-canonical) winning bundle re-solves cold in
        finalize and then equals the context-free solve exactly."""
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2], [1, 1]], 2
        )
        ctx = self._ctx(inst)
        guesses = _guess_range(inst)
        bundle = None
        for T in reversed(guesses):
            candidate = ctx.decide(T)
            if candidate is not None:
                bundle = candidate
        assert bundle is not None
        final = ctx.finalize(bundle)
        assert final.canonical
        cold = eptas_guess_feasible(
            inst, bundle.T, EPS, "augmentation",
            ip_backend="backtracking",
        )
        assert final.assignment.windows == cold.assignment.windows
        # Finalizing an already-canonical bundle is a no-op.
        assert ctx.finalize(final) is final


class TestIncrementalVsRebuild:
    """Whole-solve equivalence against the preserved rebuild driver."""

    @pytest.mark.parametrize("mode", ["augmentation", "fixed_m"])
    @given(inst=instances(max_machines=3, max_classes=5, max_size=10))
    @settings(max_examples=10, deadline=None)
    def test_agrees_across_guess_sequences(self, inst, mode):
        from repro.algorithms.reference import reference_eptas

        incremental = run_and_capture(
            lambda i: schedule_eptas(
                i, epsilon=EPS, mode=mode, ip_backend="backtracking"
            ),
            inst,
        )
        rebuild = run_and_capture(
            lambda i: reference_eptas(
                i, epsilon=EPS, mode=mode, ip_backend="backtracking"
            ),
            inst,
        )
        assert_same_outcome(
            incremental, rebuild, context=f"eptas[{mode}]"
        )
        if not incremental.raised and mode == "augmentation":
            result = incremental.result
            validate_schedule(
                augmented_instance(
                    inst, result.stats.get("extra_machines", 0)
                ),
                result.schedule,
            )

    def test_incremental_counters_reported(self):
        from repro.core.instance import Instance

        inst = Instance.from_class_sizes(
            [[5, 3], [4, 4], [6], [2, 2, 2], [3, 3]], 3
        )
        result = schedule_eptas(
            inst, epsilon=EPS, ip_backend="backtracking"
        )
        counters = result.stats["incremental"]
        assert counters["guesses"] >= 1
        assert counters["ip_solves"] <= counters["guesses"]
        assert "skeleton_hits" in counters
