"""Tests for the capacity-form window IP (Section 4.2)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound_int
from repro.core.errors import InfeasibleError
from repro.core.instance import Instance
from repro.ptas.ip import (
    solve_window_ip,
    solve_window_ip_backtracking,
    solve_window_ip_milp,
)
from repro.ptas.layers import LayerGrid, RoundedInstance, round_instance
from repro.ptas.params import choose_params
from repro.ptas.simplify import simplify
from tests.markers import needs_milp
from tests.strategies import instances


def _rounded_from(inst, eps=Fraction(1, 2)):
    T = max(lower_bound_int(inst), 1)
    params = choose_params(inst, T, eps)
    return round_instance(simplify(inst, T, params))


def _synthetic(unit_counts, num_layers, m):
    rounded = RoundedInstance(
        grid=LayerGrid(T=1, g=Fraction(1), num_layers=num_layers),
        num_machines=m,
    )
    rounded.unit_counts = {
        cid: dict(counts) for cid, counts in unit_counts.items()
    }
    return rounded


def _check_assignment(rounded, assignment):
    """Solution sanity: counts match, class windows disjoint, capacity."""
    L = rounded.grid.num_layers
    for cid, counts in rounded.unit_counts.items():
        windows = assignment.windows.get(cid, [])
        got = {}
        for start, units in windows:
            got[units] = got.get(units, 0) + 1
            assert 0 <= start and start + units <= L
        assert got == counts
        covered = set()
        for start, units in windows:
            span = set(range(start, start + units))
            assert not (covered & span), "class windows overlap"
            covered |= span
    loads = assignment.layer_loads(L)
    assert max(loads, default=0) <= rounded.num_machines


class TestSynthetic:
    def test_simple_feasible(self):
        rounded = _synthetic({0: {2: 1}, 1: {2: 1}}, num_layers=4, m=1)
        assignment = solve_window_ip(rounded)
        _check_assignment(rounded, assignment)

    def test_class_conflict_forces_spread(self):
        # One class with two 2-unit windows in 4 layers: must be [0,2)+[2,4).
        rounded = _synthetic({0: {2: 2}}, num_layers=4, m=2)
        assignment = solve_window_ip(rounded)
        _check_assignment(rounded, assignment)
        wins = sorted(assignment.windows[0])
        assert wins == [(0, 2), (2, 2)]

    @needs_milp
    def test_infeasible_capacity(self):
        rounded = _synthetic({0: {3: 1}, 1: {3: 1}}, num_layers=4, m=1)
        # 6 units > 4 capacity
        with pytest.raises(InfeasibleError):
            solve_window_ip_milp(rounded)
        with pytest.raises(InfeasibleError):
            solve_window_ip_backtracking(rounded)

    @needs_milp
    def test_infeasible_class_serialization(self):
        # One class needing 3 windows of 2 units in 5 layers: needs 6 > 5.
        rounded = _synthetic({0: {2: 3}}, num_layers=5, m=3)
        with pytest.raises(InfeasibleError):
            solve_window_ip_milp(rounded)
        with pytest.raises(InfeasibleError):
            solve_window_ip_backtracking(rounded)

    @needs_milp
    def test_window_longer_than_horizon(self):
        rounded = _synthetic({0: {9: 1}}, num_layers=4, m=1)
        with pytest.raises(InfeasibleError):
            solve_window_ip_milp(rounded)

    def test_mixed_lengths_order_free(self):
        # Class needs a 1-unit before/after a 3-unit; backtracking must
        # explore both orders (regression for the fixed-order bug).
        rounded = _synthetic(
            {0: {3: 1, 1: 1}, 1: {3: 1}}, num_layers=4, m=2
        )
        assignment = solve_window_ip_backtracking(rounded)
        _check_assignment(rounded, assignment)

    def test_unknown_backend(self):
        rounded = _synthetic({0: {2: 1}}, num_layers=2, m=1)
        from repro.core.errors import PreconditionError

        with pytest.raises(PreconditionError):
            solve_window_ip(rounded, backend="bogus")


class TestBackendAgreement:
    @needs_milp
    @given(instances(max_machines=3, max_classes=5, max_jobs_per_class=2))
    @settings(max_examples=25, deadline=None)
    def test_feasibility_agrees(self, inst):
        if inst.num_jobs == 0:
            return
        rounded = _rounded_from(inst)
        try:
            milp = solve_window_ip_milp(rounded)
            milp_feasible = True
        except InfeasibleError:
            milp_feasible = False
        try:
            bt = solve_window_ip_backtracking(rounded, node_budget=500_000)
            bt_feasible = True
        except InfeasibleError as exc:
            if "node" in str(exc):
                return  # budget exhausted, not a verdict
            bt_feasible = False
        assert milp_feasible == bt_feasible
        if milp_feasible:
            _check_assignment(rounded, milp)
            _check_assignment(rounded, bt)


class TestRealInstances:
    @given(instances(max_machines=4, max_classes=6))
    @settings(max_examples=25, deadline=None)
    def test_feasible_at_three_halves_bound(self, inst):
        """The IP must be feasible at any T >= OPT; use the 3/2 result."""
        if inst.num_jobs == 0:
            return
        import math

        from repro.algorithms.three_halves import schedule_three_halves

        ub = math.ceil(schedule_three_halves(inst).schedule.makespan)
        T = max(ub, 1)
        params = choose_params(inst, T, Fraction(1, 2))
        rounded = round_instance(simplify(inst, T, params))
        assignment = solve_window_ip(rounded)
        _check_assignment(rounded, assignment)
