"""Tests for the layered rounding (Lemma 18 / I3)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound_int
from repro.core.errors import PreconditionError
from repro.core.instance import Instance
from repro.ptas.layers import round_instance
from repro.ptas.params import choose_params
from repro.ptas.simplify import simplify
from tests.strategies import instances


def _rounded(inst, eps=Fraction(1, 2)):
    T = max(lower_bound_int(inst), 1)
    params = choose_params(inst, T, eps)
    simp = simplify(inst, T, params)
    return T, params, round_instance(simp)


class TestGrid:
    def test_grid_geometry(self):
        inst = Instance.from_class_sizes([[8], [8], [4, 4]], 2)
        T, params, rounded = _rounded(inst)
        grid = rounded.grid
        assert grid.g == params.epsilon * params.delta * T
        assert grid.num_layers == math.ceil(
            Fraction((1 + 2 * params.epsilon) * T) / grid.g
        )
        assert grid.horizon >= (1 + 2 * params.epsilon) * T

    def test_units_round_up(self):
        inst = Instance.from_class_sizes([[8], [8], [4, 4]], 2)
        T, params, rounded = _rounded(inst)
        grid = rounded.grid
        for size in (1, 3, 7, 8):
            units = grid.units(size)
            assert (units - 1) * grid.g < size <= units * grid.g

    def test_layer_guard(self):
        inst = Instance.from_class_sizes([[50], [50], [50]], 2)
        T = max(lower_bound_int(inst), 1)
        params = choose_params(inst, T, Fraction(1, 2))
        simp = simplify(inst, T, params)
        with pytest.raises(PreconditionError):
            round_instance(simp, max_layers=3)


class TestRoundedInstance:
    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_big_jobs_have_at_least_two_units(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, rounded = _rounded(inst)
        for cid, per_units in rounded.big_by_units.items():
            for units, jobs in per_units.items():
                assert units >= 2  # placeholders are the only 1-unit wins
                assert rounded.unit_counts[cid][units] >= len(jobs)

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_placeholder_counts(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, rounded = _rounded(inst)
        grid = rounded.grid
        for cid, count in rounded.placeholder_counts.items():
            assert rounded.unit_counts[cid][1] >= count
            # count = ceil(load / g)
            assert count >= 1

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_totals_consistent(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, rounded = _rounded(inst)
        assert rounded.total_windows() == sum(
            n
            for counts in rounded.unit_counts.values()
            for n in counts.values()
        )
        assert rounded.total_units() >= rounded.total_windows()
