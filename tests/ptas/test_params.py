"""Tests for EPTAS parameter selection (Section 4.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.errors import PreconditionError
from repro.core.instance import Instance
from repro.ptas.params import choose_params, job_band
from tests.strategies import instances


class TestChooseParams:
    def test_epsilon_range_enforced(self):
        inst = Instance.from_class_sizes([[3]], 1)
        with pytest.raises(PreconditionError):
            choose_params(inst, 3, Fraction(3, 5))
        with pytest.raises(PreconditionError):
            choose_params(inst, 3, Fraction(0))

    def test_unknown_mode(self):
        inst = Instance.from_class_sizes([[3]], 1)
        with pytest.raises(PreconditionError):
            choose_params(inst, 3, Fraction(1, 2), mode="bogus")

    def test_mu_is_eps_squared_delta(self):
        inst = Instance.from_class_sizes([[5, 3], [4, 4], [6]], 2)
        params = choose_params(inst, 11, Fraction(1, 2))
        assert params.mu == params.epsilon**2 * params.delta
        assert params.delta == params.epsilon**params.delta_exponent

    def test_job_classes(self):
        inst = Instance.from_class_sizes([[8, 1]], 1)
        params = choose_params(inst, 9, Fraction(1, 2))
        T = 9
        assert params.is_big(8, T) or params.is_medium(8, T)
        assert (
            params.is_big(1, T)
            or params.is_medium(1, T)
            or params.is_small(1, T)
        )

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_band_conditions_hold(self, inst):
        if inst.num_jobs == 0:
            return
        from repro.core.bounds import lower_bound_int

        T = max(lower_bound_int(inst), 1)
        for mode in ("augmentation", "fixed_m"):
            params = choose_params(inst, T, Fraction(1, 2), mode)
            band = job_band(
                inst, params.mu * T, params.delta * T
            )
            assert band <= params.medium_budget

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_categories_partition(self, inst):
        if inst.num_jobs == 0:
            return
        from repro.core.bounds import lower_bound_int

        T = max(lower_bound_int(inst), 1)
        params = choose_params(inst, T, Fraction(2, 5))
        for job in inst.jobs:
            cats = [
                params.is_big(job.size, T),
                params.is_medium(job.size, T),
                params.is_small(job.size, T),
            ]
            assert sum(cats) == 1
