"""Tests for the I → I1 → I2 simplification chain (Lemmas 15–17)."""

from fractions import Fraction

from hypothesis import given, settings

from repro.core.bounds import lower_bound_int
from repro.core.instance import Instance
from repro.ptas.params import choose_params
from repro.ptas.simplify import simplify
from tests.strategies import instances


def _setup(inst, eps=Fraction(1, 2), mode="augmentation"):
    T = max(lower_bound_int(inst), 1)
    params = choose_params(inst, T, eps, mode)
    return T, params, simplify(inst, T, params)


class TestSimplify:
    def test_every_job_lands_in_exactly_one_bucket(self):
        inst = Instance.from_class_sizes(
            [[9, 1, 1], [5, 5], [2, 2, 2, 2], [1, 1]], 3
        )
        T, params, simp = _setup(inst)
        seen = []
        for bucket in (
            simp.big_jobs,
            simp.placeholder_small,
            simp.medium_clumps,
            simp.removed_classes,
            simp.small_clumps_band,
            simp.small_clumps_tiny,
        ):
            for jobs in bucket.values():
                seen.extend(j.id for j in jobs)
        assert sorted(seen) == sorted(j.id for j in inst.jobs)

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, simp = _setup(inst)
        seen = []
        for bucket in (
            simp.big_jobs,
            simp.placeholder_small,
            simp.medium_clumps,
            simp.removed_classes,
            simp.small_clumps_band,
            simp.small_clumps_tiny,
        ):
            for jobs in bucket.values():
                seen.extend(j.id for j in jobs)
        assert sorted(seen) == sorted(j.id for j in inst.jobs)

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_buckets_respect_thresholds(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, simp = _setup(inst)
        for cid, jobs in simp.big_jobs.items():
            assert all(params.is_big(j.size, T) for j in jobs)
        for cid, jobs in simp.medium_clumps.items():
            assert all(params.is_medium(j.size, T) for j in jobs)
            assert sum(j.size for j in jobs) <= params.epsilon * T
        for cid, jobs in simp.placeholder_small.items():
            load = sum(j.size for j in jobs)
            assert load > params.delta * T
        for cid, jobs in simp.small_clumps_band.items():
            load = sum(j.size for j in jobs)
            assert params.mu * T < load <= params.delta * T
        for cid, jobs in simp.small_clumps_tiny.items():
            assert sum(j.size for j in jobs) <= params.mu * T

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_fixed_m_removes_no_classes(self, inst):
        if inst.num_jobs == 0:
            return
        T, params, simp = _setup(inst, mode="fixed_m")
        assert simp.removed_classes == {}

    def test_heavy_medium_class_removed_in_augmentation(self):
        # Class 0: four jobs of 5 with T=16, eps=1/2, delta=1/2:
        # medium band (2, 8]: load 20 > eps*T = 8 -> whole class removed
        # (if delta=1/2 chosen; else check generically below).
        inst = Instance.from_class_sizes(
            [[5, 5, 5, 5]] + [[16]] * 2 + [[1]] * 3, 5
        )
        T, params, simp = _setup(inst)
        medium_load = sum(
            j.size
            for j in inst.classes[0]
            if params.is_medium(j.size, T)
        )
        if medium_load > params.epsilon * T:
            assert 0 in simp.removed_classes
