"""Tests for the pluggable execution-backend subsystem.

Covers the subsystem's contract: cross-backend determinism (one plan,
identical canonical record streams through ``serial``/``pool``/
``sharded``/``prefetch``), the sharded backend's work stealing, crash
requeue + poison-cell quarantine, part-file recovery, backend-agnostic
resume, the prefetch pipeline's hit-rate accounting, and the v2 record
schema.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.algorithms import registry
from repro.runner import (
    InstanceRepository,
    RemoteInstanceRepository,
    RunRecord,
    WorkPlan,
    available_backends,
    canonical_stream,
    get_backend,
    read_records,
    run_plan,
)
from repro.runner.backends.sharded import home_shard
from repro.workloads import generate

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not HAS_FORK, reason="needs fork start method (registry inheritance)"
)


@pytest.fixture(autouse=True)
def _clear_backend_env(monkeypatch):
    """This file asserts *explicit* backend selection; neutralize the
    CI job's REPRO_SWEEP_BACKEND override (the env tests re-set it)."""
    monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_SHARDS", raising=False)


@pytest.fixture
def repo():
    return InstanceRepository.from_families(
        ["uniform", "big_jobs"], [2, 3], [6], [0, 1]
    )


@pytest.fixture
def golden_plan(repo):
    """The fixed plan the cross-backend acceptance tests share."""
    return WorkPlan.from_product(repo, ["three_halves", "merge_lpt"])


@pytest.fixture
def fake_algorithm():
    registered = []

    def _register(name, func):
        registry._REGISTRY[name] = func
        registered.append(name)
        return name

    yield _register
    for name in registered:
        registry._REGISTRY.pop(name, None)


class TestRegistry:
    def test_four_backends_available(self):
        assert {"serial", "pool", "sharded", "prefetch"} <= set(
            available_backends()
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("no_such_backend")

    def test_unknown_backend_in_run_plan(self, golden_plan):
        with pytest.raises(ValueError, match="unknown execution backend"):
            run_plan(golden_plan, backend="no_such_backend")


class TestCrossBackendDeterminism:
    """Acceptance: one shared plan must produce identical canonical
    record streams through every backend (timing/provenance excluded)."""

    def test_serial_pool_sharded_prefetch_identical(
        self, golden_plan, repo, tmp_path
    ):
        reference = run_plan(golden_plan, tmp_path / "serial.jsonl")
        assert reference.backend == "serial" and reference.errors == 0
        golden = canonical_stream(reference.records)

        pool = run_plan(golden_plan, tmp_path / "pool.jsonl", workers=2)
        assert pool.backend == "pool"
        assert canonical_stream(pool.records) == golden

        sharded = run_plan(
            golden_plan, tmp_path / "sharded.jsonl", backend="sharded",
            shards=3,
        )
        assert sharded.backend == "sharded"
        assert canonical_stream(sharded.records) == golden

        deferred = WorkPlan.from_product(
            repo, ["three_halves", "merge_lpt"], defer_payloads=True
        )
        prefetch = run_plan(
            deferred,
            tmp_path / "prefetch.jsonl",
            backend="prefetch",
            prefetch_inner="serial",
            repository=RemoteInstanceRepository(repo, latency_s=0.001),
        )
        assert canonical_stream(prefetch.records) == golden

    def test_sharded_jsonl_is_key_ordered_and_parts_cleaned(
        self, golden_plan, tmp_path
    ):
        out = tmp_path / "sweep.jsonl"
        run_plan(golden_plan, out, backend="sharded", shards=3)
        on_disk = read_records(out)
        assert len(on_disk) == len(golden_plan)
        assert [rec.key for rec in on_disk] == sorted(
            rec.key for rec in on_disk
        )
        assert not (tmp_path / "sweep.jsonl.parts").exists()

    def test_sharded_rerun_is_bytewise_reproducible(
        self, golden_plan, tmp_path
    ):
        first = run_plan(
            golden_plan, tmp_path / "a.jsonl", backend="sharded", shards=2
        )
        second = run_plan(
            golden_plan, tmp_path / "b.jsonl", backend="sharded", shards=4
        )
        assert canonical_stream(first.records) == canonical_stream(
            second.records
        )

    def test_error_cells_are_deterministic_too(self, repo, tmp_path):
        plan = WorkPlan.from_product(repo, ["merge_lpt", "no_such_algo"])
        serial = run_plan(plan)
        sharded = run_plan(
            plan, tmp_path / "err.jsonl", backend="sharded", shards=2
        )
        assert serial.errors == sharded.errors == len(repo)
        assert canonical_stream(serial.records) == canonical_stream(
            sharded.records
        )


class TestShardedScheduling:
    def test_home_shard_is_stable(self, golden_plan):
        keys = [spec.key for spec in golden_plan]
        assert [home_shard(k, 4) for k in keys] == [
            home_shard(k, 4) for k in keys
        ]
        assert all(0 <= home_shard(k, 4) < 4 for k in keys)

    def test_idle_shard_steals_from_loaded_shard(self, tmp_path):
        """Every cell is home-sharded onto shard 0, so shard 1's worker
        can only make progress by stealing — deterministic starvation."""
        repo = InstanceRepository.from_families(
            ["uniform"], [2, 3], [6], [0, 1, 2, 3]
        )
        plan = WorkPlan()
        for ref in repo:
            for algorithm in ("merge_lpt", "three_halves", "five_thirds"):
                spec = plan.add(ref, algorithm)
                if spec is not None and home_shard(spec.key, 2) != 0:
                    # Keep only shard-0 cells in the plan.
                    plan._specs.pop()
                    plan._keys.discard(spec.key)
        assert len(plan) >= 4
        result = run_plan(
            plan, tmp_path / "steal.jsonl", backend="sharded", shards=2
        )
        assert result.errors == 0
        assert result.stats["steals"] >= 1
        assert result.stats["cells_by_shard"][1] >= 1

    def test_part_file_recovery_adopts_completed_cells(
        self, golden_plan, tmp_path
    ):
        """Records left in part files by a killed sweep are adopted, not
        re-executed (their payload is trusted verbatim)."""
        reference = run_plan(golden_plan)
        adopted = reference.records[0]
        marked = adopted.to_dict()
        marked["meta"] = dict(marked["meta"], recovered_marker=True)

        out = tmp_path / "sweep.jsonl"
        part_dir = tmp_path / "sweep.jsonl.parts"
        part_dir.mkdir()
        (part_dir / "shard-000.part.jsonl").write_text(
            json.dumps(marked, sort_keys=True, default=str) + "\n"
        )
        result = run_plan(golden_plan, out, backend="sharded", shards=2)
        assert result.stats["part_recovered"] == 1
        # The adopted cell was completed by the previous (killed) run,
        # not executed now.
        assert result.executed == len(golden_plan) - 1
        by_key = {rec.key: rec for rec in result.records}
        assert by_key[adopted.key].meta.get("recovered_marker") is True
        assert not part_dir.exists()

    def test_no_resume_discards_stale_part_files(
        self, golden_plan, tmp_path
    ):
        """resume=False means re-execute everything — stale part-file
        records from a killed sweep must not be adopted."""
        reference = run_plan(golden_plan)
        marked = reference.records[0].to_dict()
        marked["meta"] = dict(marked["meta"], recovered_marker=True)

        part_dir = tmp_path / "sweep.jsonl.parts"
        part_dir.mkdir()
        (part_dir / "shard-000.part.jsonl").write_text(
            json.dumps(marked, sort_keys=True, default=str) + "\n"
        )
        result = run_plan(
            golden_plan,
            tmp_path / "sweep.jsonl",
            backend="sharded",
            shards=2,
            resume=False,
        )
        assert result.stats["part_recovered"] == 0
        assert result.executed == len(golden_plan)
        assert not any(
            rec.meta.get("recovered_marker") for rec in result.records
        )


@fork_only
class TestCrashInjection:
    """Acceptance: a worker killed mid-cell is requeued and the sweep
    completes; a cell that keeps killing workers is quarantined."""

    def test_crashed_cell_is_requeued_and_succeeds(
        self, fake_algorithm, tmp_path
    ):
        marker = tmp_path / "crashed-once"

        def crash_once(instance, marker=None, **kwargs):
            if marker and not os.path.exists(marker):
                open(marker, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            from repro.algorithms import get_algorithm

            return get_algorithm("merge_lpt")(instance)

        fake_algorithm("_crash_once", crash_once)
        repo = InstanceRepository.from_families(
            ["uniform"], [2], [6], [0, 1, 2]
        )
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        plan.add(next(iter(repo)), "_crash_once", {"marker": str(marker)})

        result = run_plan(
            plan, tmp_path / "crash.jsonl", backend="sharded", shards=2
        )
        assert result.errors == 0
        crashed = [r for r in result.records if r.algorithm == "_crash_once"]
        assert len(crashed) == 1 and crashed[0].ok
        assert crashed[0].attempt == 1  # second attempt succeeded
        assert result.stats["retries"] == 1
        assert result.stats["respawns"] >= 1
        # The whole sweep still landed on disk.
        assert len(read_records(tmp_path / "crash.jsonl")) == len(plan)

    def test_poison_cell_is_quarantined_not_fatal(
        self, fake_algorithm, tmp_path
    ):
        def poison(instance, **kwargs):
            os.kill(os.getpid(), signal.SIGKILL)

        fake_algorithm("_poison", poison)
        repo = InstanceRepository.from_families(
            ["uniform"], [2], [6], [0, 1, 2]
        )
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        plan.add(next(iter(repo)), "_poison")

        result = run_plan(
            plan,
            tmp_path / "poison.jsonl",
            backend="sharded",
            shards=2,
            retry_limit=1,
        )
        bad = [r for r in result.records if r.algorithm == "_poison"]
        assert len(bad) == 1 and bad[0].status == "error"
        assert "quarantined" in bad[0].error
        assert bad[0].attempt == 1
        assert result.stats["quarantined"] == 1
        # Healthy cells all survived the crashes.
        assert all(
            rec.ok for rec in result.records if rec.algorithm == "merge_lpt"
        )


@fork_only
class TestKeyboardInterrupt:
    """Regression: Ctrl-C in the sharded coordinator must terminate and
    reap the shard workers (no orphans), keep the part files adoptable,
    and re-raise the interrupt to the caller."""

    def test_sigint_reaps_workers_and_keeps_part_files(self, tmp_path):
        import sys
        import textwrap
        import time
        from pathlib import Path

        out = tmp_path / "sweep.jsonl"
        marker = tmp_path / "slow-cell-started"
        script = tmp_path / "sigint_sweep.py"
        script.write_text(
            textwrap.dedent(
                """
                import multiprocessing, os, sys, time

                from repro.algorithms import get_algorithm, registry
                from repro.runner import InstanceRepository, WorkPlan, run_plan
                from repro.workloads import generate

                def _slow(instance, marker=None, **kwargs):
                    open(marker, "w").close()
                    time.sleep(60)
                    return get_algorithm("merge_lpt")(instance)

                registry._REGISTRY["_sigint_slow"] = _slow
                repo = InstanceRepository()
                quick = [
                    repo.add(generate("uniform", 2, 6, seed), name=f"q{seed}")
                    for seed in range(6)
                ]
                slow_ref = repo.add(generate("uniform", 2, 6, 7), name="slow")
                plan = WorkPlan.from_product(quick, ["merge_lpt"])
                plan.add(slow_ref, "_sigint_slow", {"marker": sys.argv[2]})
                try:
                    run_plan(plan, sys.argv[1], backend="sharded", shards=2)
                except KeyboardInterrupt:
                    # The graceful handler must already have terminated
                    # and joined every shard worker.
                    leftover = multiprocessing.active_children()
                    sys.exit(7 if not leftover else 8)
                sys.exit(9)
                """
            )
        )
        src_dir = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env.pop("REPRO_SWEEP_BACKEND", None)
        env.pop("REPRO_SWEEP_SHARDS", None)
        import subprocess

        proc = subprocess.Popen(
            [sys.executable, str(script), str(out), str(marker)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        part_dir = tmp_path / "sweep.jsonl.parts"

        def part_records():
            if not part_dir.exists():
                return []
            from repro.runner.records import iter_jsonl

            return [
                obj
                for part in sorted(part_dir.glob("shard-*.part.jsonl"))
                for obj in iter_jsonl(part)
            ]

        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                if marker.exists() and len(part_records()) >= 6:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert proc.poll() is None, (
                f"sweep exited early: {proc.communicate()[1]}"
            )
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == 7, proc.communicate()[1]

        # Part files survived the interrupt with every completed cell.
        adopted = part_records()
        assert len(adopted) == 6
        assert all(obj["status"] == "ok" for obj in adopted)

        # The next (sharded) run adopts the part files and only executes
        # the interrupted cell.
        registry._REGISTRY["_sigint_slow"] = (
            lambda instance, marker=None, **kwargs: registry.get_algorithm(
                "merge_lpt"
            )(instance)
        )
        try:
            repo = InstanceRepository()
            quick = [
                repo.add(generate("uniform", 2, 6, seed), name=f"q{seed}")
                for seed in range(6)
            ]
            slow_ref = repo.add(generate("uniform", 2, 6, 7), name="slow")
            plan = WorkPlan.from_product(quick, ["merge_lpt"])
            plan.add(slow_ref, "_sigint_slow", {"marker": str(marker)})
            result = run_plan(plan, out, backend="sharded", shards=2)
        finally:
            registry._REGISTRY.pop("_sigint_slow", None)
        assert result.stats["part_recovered"] == 6
        assert result.executed == 1
        assert result.errors == 0
        assert len(read_records(out)) == 7
        assert not part_dir.exists()


class TestBackendAgnosticResume:
    def test_pool_sweep_resumes_on_sharded(self, golden_plan, tmp_path):
        out = tmp_path / "sweep.jsonl"
        first = run_plan(golden_plan, out, workers=2)
        assert first.executed == len(golden_plan)
        second = run_plan(golden_plan, out, backend="sharded", shards=2)
        assert second.executed == 0
        assert second.cache_hits == len(golden_plan)

    def test_sharded_sweep_resumes_on_serial(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(
            WorkPlan.from_product(repo, ["merge_lpt"]),
            out,
            backend="sharded",
            shards=2,
        )
        grown = WorkPlan.from_product(repo, ["merge_lpt", "three_halves"])
        result = run_plan(grown, out, backend="serial")
        assert result.cache_hits == len(repo)
        assert result.executed == len(repo)


class TestPrefetch:
    def test_prefetch_hit_rate_and_fetch_dedup(self, repo, tmp_path):
        remote = RemoteInstanceRepository(repo, latency_s=0.002)
        plan = WorkPlan.from_product(
            repo, ["three_halves", "merge_lpt"], defer_payloads=True
        )
        result = run_plan(
            plan,
            tmp_path / "prefetch.jsonl",
            backend="prefetch",
            prefetch_inner="serial",
            repository=remote,
            prefetch_window=4,
        )
        assert result.errors == 0
        # One fetch per distinct instance, not per cell.
        assert remote.fetch_count == len(repo)
        stats = result.stats
        assert stats["prefetch_hits"] + stats["prefetch_misses"] == len(plan)
        assert 0.0 <= stats["prefetch_hit_rate"] <= 1.0
        assert all(
            rec.backend == "prefetch+serial" for rec in result.records
        )

    def test_fetch_failure_is_error_record_not_crash(self, repo, tmp_path):
        class FlakyRepo:
            def __init__(self, inner, bad_name):
                self.inner = inner
                self.bad_name = bad_name

            def fetch_payload(self, name):
                if name == self.bad_name:
                    raise IOError("remote unavailable")
                return self.inner.fetch_payload(name)

        bad_name = repo.names()[0]
        plan = WorkPlan.from_product(
            repo, ["merge_lpt"], defer_payloads=True
        )
        result = run_plan(
            plan,
            tmp_path / "flaky.jsonl",
            backend="prefetch",
            prefetch_inner="serial",
            repository=FlakyRepo(repo, bad_name),
        )
        bad = [rec for rec in result.records if not rec.ok]
        assert len(bad) == 1 and bad[0].instance == bad_name
        assert "remote unavailable" in bad[0].error
        assert sum(1 for rec in result.records if rec.ok) == len(repo) - 1

    def test_prefetch_over_sharded_delegates_to_workers(
        self, repo, tmp_path
    ):
        """A fetches-in-workers inner (sharded) gets cells passed
        through unresolved: shard workers fetch concurrently, and the
        shared fetch counter sees their forked-process fetches."""
        remote = RemoteInstanceRepository(repo, latency_s=0.001)
        plan = WorkPlan.from_product(
            repo, ["merge_lpt"], defer_payloads=True
        )
        result = run_plan(
            plan,
            tmp_path / "delegated.jsonl",
            backend="prefetch",
            prefetch_inner="sharded",
            shards=2,
            repository=remote,
        )
        assert result.errors == 0
        assert result.stats.get("prefetch_delegated_to_workers") is True
        assert "prefetch_hit_rate" not in result.stats
        # Worker-side fetches are visible through the shared counter.
        assert remote.fetch_count == len(plan)
        assert all(
            rec.backend == "prefetch+sharded" for rec in result.records
        )

    def test_deferred_plan_without_repository_is_error_records(self, repo):
        plan = WorkPlan.from_product(repo, ["merge_lpt"], defer_payloads=True)
        result = run_plan(plan)
        assert result.errors == len(plan)
        assert all("deferred payload" in rec.error for rec in result.records)


class TestEnvOverride:
    def test_env_selects_backend(self, golden_plan, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_SWEEP_SHARDS", "2")
        result = run_plan(golden_plan, tmp_path / "env.jsonl")
        assert result.backend == "sharded"
        assert result.stats["shards"] == 2

    def test_explicit_backend_beats_env(self, golden_plan, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "sharded")
        result = run_plan(golden_plan, backend="serial")
        assert result.backend == "serial"

    def test_env_shards_only_applies_to_env_selected_backend(
        self, golden_plan, tmp_path, monkeypatch
    ):
        """REPRO_SWEEP_SHARDS must not override the workers-based
        default when the backend was chosen explicitly."""
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "sharded")
        monkeypatch.setenv("REPRO_SWEEP_SHARDS", "2")
        explicit = run_plan(
            golden_plan, tmp_path / "a.jsonl", backend="sharded", workers=3
        )
        assert explicit.stats["shards"] == 3
        from_env = run_plan(golden_plan, tmp_path / "b.jsonl", workers=3)
        assert from_env.backend == "sharded"
        assert from_env.stats["shards"] == 2


class TestRecordSchemaV2:
    def test_records_stamped_with_provenance(self, golden_plan, tmp_path):
        result = run_plan(
            golden_plan, tmp_path / "sweep.jsonl", backend="sharded", shards=2
        )
        for rec in result.records:
            assert rec.backend == "sharded"
            assert rec.shard in (0, 1)
            assert rec.attempt == 0
        on_disk = [
            json.loads(line)
            for line in (tmp_path / "sweep.jsonl").read_text().splitlines()
        ]
        assert all(obj["schema"] == 2 for obj in on_disk)
        assert all("backend" in obj and "shard" in obj for obj in on_disk)

    def test_v1_records_still_parse(self):
        v1 = {
            "instance": "old",
            "instance_hash": "abc",
            "algorithm": "merge_lpt",
            "params": {},
            "status": "ok",
            "n": 3,
            "m": 2,
            "classes": 2,
            "makespan": "7/2",
            "wall_time": 0.01,
        }
        rec = RunRecord.from_dict(v1)
        assert rec.backend is None
        assert rec.shard is None
        assert rec.attempt == 0

    def test_canonical_dict_excludes_volatile_fields(self, repo):
        result = run_plan(WorkPlan.from_product(repo, ["merge_lpt"]))
        canonical = result.records[0].canonical_dict()
        for key in ("wall_time", "backend", "shard", "attempt"):
            assert key not in canonical
        for key in ("instance", "makespan", "valid", "schema"):
            assert key in canonical


class TestBatchedCellEntry:
    """The batched worker entry (``execute_cells``): one shared kernel
    arena across a payload batch, streaming records, never raising."""

    @staticmethod
    def _payload(name, inst, algorithm="class_greedy", params=None):
        return {
            "instance_name": name,
            "instance_hash": f"h-{name}",
            "algorithm": algorithm,
            "params": params or {},
            "meta": {},
            "instance_payload": inst.to_dict(),
        }

    def test_streams_records_in_input_order(self):
        from repro.runner.backends.base import execute_cell, execute_cells

        payloads = [
            self._payload(
                f"cell{seed}",
                generate("uniform", 3, 8, seed),
                params={"kernel": "array"},
            )
            for seed in range(4)
        ]
        records = list(execute_cells(iter(payloads)))
        assert [r["instance"] for r in records] == [
            f"cell{seed}" for seed in range(4)
        ]
        # Batch and per-cell entries agree cell for cell (wall time aside).
        for payload, record in zip(payloads, records):
            solo = execute_cell(payload)
            assert record["status"] == "ok"
            assert record["valid"]
            assert record["makespan"] == solo["makespan"]

    def test_one_arena_is_shared_across_the_batch(self, monkeypatch):
        from contextlib import contextmanager

        import repro.core.arraykernel as arraykernel
        from repro.runner.backends.base import execute_cells

        captured = []
        real_scope = arraykernel.arena_scope

        @contextmanager
        def capturing_scope(arena=None):
            with real_scope(arena) as shared:
                captured.append(shared)
                yield shared

        monkeypatch.setattr(arraykernel, "arena_scope", capturing_scope)
        payloads = [
            self._payload(
                f"c{seed}",
                generate("uniform", 3, 30, seed),
                algorithm="five_thirds",
                params={"kernel": "array"},
            )
            for seed in range(3)
        ]
        records = list(execute_cells(iter(payloads)))
        assert all(r["status"] == "ok" for r in records)
        # One scope spans the whole batch, and later cells reuse the
        # first cell's buffers through it.
        assert len(captured) == 1
        assert captured[0].hits > 0

    def test_errors_do_not_stop_the_batch(self):
        from repro.runner.backends.base import execute_cells

        good = self._payload("good", generate("uniform", 3, 6, 0))
        bad = dict(
            self._payload("bad", generate("uniform", 3, 6, 1)),
            instance_payload=None,
        )
        records = list(execute_cells(iter([bad, good])))
        assert [r["status"] for r in records] == ["error", "ok"]
