"""Tests for the batch sweep engine: caching, resume, failure isolation."""

import json
import warnings
from fractions import Fraction

import pytest

from repro.algorithms import registry
from repro.core.instance import Instance
from repro.runner import (
    DuplicateCellWarning,
    InstanceRepository,
    RunRecord,
    WorkPlan,
    cache_key,
    instance_content_hash,
    read_records,
    run_plan,
)
from repro.workloads import generate


@pytest.fixture
def repo():
    return InstanceRepository.from_families(
        ["uniform", "big_jobs"], [2, 4], [6], [0, 1]
    )


@pytest.fixture
def plan(repo):
    return WorkPlan.from_product(
        repo, ["three_halves", "five_thirds", "merge_lpt"]
    )


class TestPlan:
    def test_product_size(self, plan):
        assert len(plan) == 8 * 3

    def test_duplicate_cells_skipped_with_warning(self, repo):
        with pytest.warns(DuplicateCellWarning, match="duplicate cell"):
            plan = WorkPlan.from_product(
                repo, ["three_halves", "three_halves"]
            )
        assert len(plan) == 8
        assert plan.duplicates_skipped == 8

    def test_no_warning_without_duplicates(self, repo):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DuplicateCellWarning)
            plan = WorkPlan.from_product(repo, ["three_halves", "merge_lpt"])
        assert plan.duplicates_skipped == 0

    def test_content_hash_ignores_name(self):
        inst = generate("uniform", 2, 6, 0)
        renamed = Instance(
            inst.jobs, inst.num_machines, name="something-else"
        )
        assert instance_content_hash(inst) == instance_content_hash(renamed)

    def test_content_hash_sees_machines(self):
        inst = generate("uniform", 2, 6, 0)
        wider = Instance(inst.jobs, 3, name=inst.name)
        assert instance_content_hash(inst) != instance_content_hash(wider)

    def test_params_in_cache_key(self):
        assert cache_key("h", "a", {"x": 1}) != cache_key("h", "a", {"x": 2})
        assert cache_key("h", "a", {"x": 1, "y": 2}) == cache_key(
            "h", "a", {"y": 2, "x": 1}
        )


class TestInlineRun:
    def test_in_memory_sweep(self, plan):
        result = run_plan(plan)
        assert result.executed == len(plan)
        assert result.cache_hits == 0
        assert result.errors == 0
        assert len(result.records) == len(plan)
        assert all(rec.valid for rec in result.records)
        assert all(rec.ratio >= 1 for rec in result.records)

    def test_records_are_exact(self, plan):
        result = run_plan(plan)
        for rec in result.records:
            assert isinstance(rec.makespan, Fraction)
            assert isinstance(rec.lower_bound, Fraction)
            if rec.algorithm == "three_halves":
                assert rec.ratio <= Fraction(3, 2)

    def test_records_in_plan_order(self, plan):
        result = run_plan(plan)
        expected = [(s.instance_name, s.algorithm) for s in plan]
        got = [(r.instance, r.algorithm) for r in result.records]
        assert got == expected

    def test_progress_callback(self, repo):
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        seen = []
        run_plan(plan, progress=lambda rec, done, total: seen.append((done, total)))
        assert seen == [(i + 1, len(plan)) for i in range(len(plan))]


class TestCache:
    def test_rerun_is_all_cache_hits(self, plan, tmp_path):
        out = tmp_path / "sweep.jsonl"
        first = run_plan(plan, out)
        assert first.executed == len(plan)

        second = run_plan(plan, out)
        assert second.executed == 0
        assert second.cache_hits == len(plan)
        assert second.errors == 0
        # Cached records carry full data, not placeholders.
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]
        # No duplicate lines were appended.
        assert len(read_records(out)) == len(plan)

    def test_new_cells_only_are_executed(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(WorkPlan.from_product(repo, ["merge_lpt"]), out)
        grown = WorkPlan.from_product(repo, ["merge_lpt", "three_halves"])
        result = run_plan(grown, out)
        assert result.cache_hits == len(repo)
        assert result.executed == len(repo)

    def test_no_resume_reexecutes_and_truncates(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        run_plan(plan, out)
        result = run_plan(plan, out, resume=False)
        assert result.executed == len(plan)
        assert result.cache_hits == 0
        # The file was rewritten, not appended: no duplicate cells.
        assert len(read_records(out)) == len(plan)

    def test_resume_after_partial_jsonl(self, plan, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(plan, out)
        lines = out.read_text().splitlines()
        # Simulate a sweep killed mid-write: keep 5 complete records plus
        # a torn half-line.
        out.write_text("\n".join(lines[:5]) + "\n" + lines[5][: len(lines[5]) // 2])
        result = run_plan(plan, out)
        assert result.cache_hits == 5
        assert result.executed == len(plan) - 5
        assert result.errors == 0
        # The file now contains every cell exactly once (torn tail aside).
        keys = {
            cache_key(r.instance_hash, r.algorithm, r.params)
            for r in read_records(out)
        }
        assert len(keys) == len(plan)


class TestFailureIsolation:
    def test_unknown_algorithm_is_error_record(self, repo, tmp_path):
        plan = WorkPlan.from_product(repo, ["merge_lpt", "no_such_algo"])
        result = run_plan(plan, tmp_path / "sweep.jsonl")
        assert result.errors == len(repo)
        bad = [r for r in result.records if not r.ok]
        assert all(r.algorithm == "no_such_algo" for r in bad)
        assert all("no_such_algo" in r.error for r in bad)
        # Healthy cells still completed.
        assert sum(1 for r in result.records if r.ok) == len(repo)

    def test_solver_exception_is_error_record(self, repo):
        def exploding(instance, **kwargs):
            raise RuntimeError("boom")

        registry._REGISTRY["_exploding_test"] = exploding
        try:
            plan = WorkPlan.from_product(repo, ["_exploding_test", "merge_lpt"])
            result = run_plan(plan)
            assert result.errors == len(repo)
            bad = [r for r in result.records if not r.ok]
            assert all("boom" in r.error for r in bad)
        finally:
            del registry._REGISTRY["_exploding_test"]

    def test_errors_retried_on_resume(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        plan = WorkPlan.from_product(repo, ["no_such_algo"])
        run_plan(plan, out)
        result = run_plan(plan, out)
        assert result.executed == len(plan)  # errors are not cache hits
        result = run_plan(plan, out, retry_errors=False)
        assert result.executed == 0
        assert result.cache_hits == len(plan)


class TestParallelAcceptance:
    def test_twenty_plus_cells_four_workers_then_full_cache_hit(
        self, tmp_path
    ):
        """Acceptance: ≥20 cells with --workers 4 produce a complete JSONL
        result set, and re-running is a 100% cache hit."""
        repo = InstanceRepository.from_families(
            ["uniform", "big_jobs"], [2, 3], [6], [0, 1]
        )
        plan = WorkPlan.from_product(
            repo, ["three_halves", "five_thirds", "merge_lpt"]
        )
        assert len(plan) >= 20
        out = tmp_path / "sweep.jsonl"

        first = run_plan(plan, out, workers=4)
        assert first.executed == len(plan)
        assert first.errors == 0
        on_disk = read_records(out)
        assert len(on_disk) == len(plan)
        assert all(rec.ok and rec.valid for rec in on_disk)

        second = run_plan(plan, out, workers=4)
        assert second.executed == 0
        assert second.cache_hits == len(plan)

    def test_worker_failure_isolated_across_pool(self, tmp_path):
        repo = InstanceRepository.from_families(["uniform"], [2, 3], [6], [0, 1])
        plan = WorkPlan.from_product(repo, ["merge_lpt", "no_such_algo"])
        result = run_plan(plan, tmp_path / "sweep.jsonl", workers=4)
        assert result.errors == len(repo)
        assert sum(1 for r in result.records if r.ok) == len(repo)


class TestRecordRoundtrip:
    def test_jsonl_roundtrip_preserves_exact_values(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        result = run_plan(WorkPlan.from_product(repo, ["three_halves"]), out)
        # Match by cache key: disk order is backend-dependent (the
        # sharded backend writes the canonical key-ordered stream).
        loaded = {rec.key: rec for rec in read_records(out)}
        assert len(loaded) == len(result.records)
        for mem in result.records:
            disk = loaded[mem.key]
            assert disk.makespan == mem.makespan
            assert disk.lower_bound == mem.lower_bound
            assert disk.ratio == mem.ratio
            assert disk.meta == mem.meta

    def test_non_json_params_serialize_and_cache(self, repo, tmp_path):
        """Fraction-valued params must not crash record writing, and the
        canonicalized form must still cache-hit on re-run."""
        out = tmp_path / "sweep.jsonl"
        grid = [{"epsilon": Fraction(1, 3)}]
        plan = WorkPlan.from_product(repo, ["merge_lpt"], params_grid=grid)
        first = run_plan(plan, out)
        assert first.errors in (0, len(plan))  # solver may reject the kwarg
        assert len(read_records(out)) == len(plan)
        second = run_plan(
            WorkPlan.from_product(repo, ["merge_lpt"], params_grid=grid),
            out,
            retry_errors=False,
        )
        assert second.executed == 0
        assert second.cache_hits == len(plan)

    def test_jsonl_lines_are_valid_json(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(WorkPlan.from_product(repo, ["merge_lpt"]), out)
        for line in out.read_text().splitlines():
            obj = json.loads(line)
            assert obj["status"] == "ok"
            assert Fraction(obj["makespan"]) > 0
