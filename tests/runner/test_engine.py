"""Tests for the batch sweep engine: caching, resume, failure isolation."""

import json
import os
import subprocess
import sys
import textwrap
import warnings
from fractions import Fraction
from pathlib import Path

import pytest

from repro.algorithms import registry
from repro.core.instance import Instance
from repro.runner import (
    DuplicateCellWarning,
    InstanceRepository,
    RunRecord,
    WorkPlan,
    cache_key,
    instance_content_hash,
    read_records,
    run_plan,
)
from repro.runner.engine import staging_path
from repro.workloads import generate

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def repo():
    return InstanceRepository.from_families(
        ["uniform", "big_jobs"], [2, 4], [6], [0, 1]
    )


@pytest.fixture
def plan(repo):
    return WorkPlan.from_product(
        repo, ["three_halves", "five_thirds", "merge_lpt"]
    )


class TestPlan:
    def test_product_size(self, plan):
        assert len(plan) == 8 * 3

    def test_duplicate_cells_skipped_with_warning(self, repo):
        with pytest.warns(DuplicateCellWarning, match="duplicate cell"):
            plan = WorkPlan.from_product(
                repo, ["three_halves", "three_halves"]
            )
        assert len(plan) == 8
        assert plan.duplicates_skipped == 8

    def test_no_warning_without_duplicates(self, repo):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DuplicateCellWarning)
            plan = WorkPlan.from_product(repo, ["three_halves", "merge_lpt"])
        assert plan.duplicates_skipped == 0

    def test_content_hash_ignores_name(self):
        inst = generate("uniform", 2, 6, 0)
        renamed = Instance(
            inst.jobs, inst.num_machines, name="something-else"
        )
        assert instance_content_hash(inst) == instance_content_hash(renamed)

    def test_content_hash_sees_machines(self):
        inst = generate("uniform", 2, 6, 0)
        wider = Instance(inst.jobs, 3, name=inst.name)
        assert instance_content_hash(inst) != instance_content_hash(wider)

    def test_params_in_cache_key(self):
        assert cache_key("h", "a", {"x": 1}) != cache_key("h", "a", {"x": 2})
        assert cache_key("h", "a", {"x": 1, "y": 2}) == cache_key(
            "h", "a", {"y": 2, "x": 1}
        )


class TestInlineRun:
    def test_in_memory_sweep(self, plan):
        result = run_plan(plan)
        assert result.executed == len(plan)
        assert result.cache_hits == 0
        assert result.errors == 0
        assert len(result.records) == len(plan)
        assert all(rec.valid for rec in result.records)
        assert all(rec.ratio >= 1 for rec in result.records)

    def test_records_are_exact(self, plan):
        result = run_plan(plan)
        for rec in result.records:
            assert isinstance(rec.makespan, Fraction)
            assert isinstance(rec.lower_bound, Fraction)
            if rec.algorithm == "three_halves":
                assert rec.ratio <= Fraction(3, 2)

    def test_records_in_plan_order(self, plan):
        result = run_plan(plan)
        expected = [(s.instance_name, s.algorithm) for s in plan]
        got = [(r.instance, r.algorithm) for r in result.records]
        assert got == expected

    def test_progress_callback(self, repo):
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        seen = []
        run_plan(plan, progress=lambda rec, done, total: seen.append((done, total)))
        assert seen == [(i + 1, len(plan)) for i in range(len(plan))]


class TestCache:
    def test_rerun_is_all_cache_hits(self, plan, tmp_path):
        out = tmp_path / "sweep.jsonl"
        first = run_plan(plan, out)
        assert first.executed == len(plan)

        second = run_plan(plan, out)
        assert second.executed == 0
        assert second.cache_hits == len(plan)
        assert second.errors == 0
        # Cached records carry full data, not placeholders.
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]
        # No duplicate lines were appended.
        assert len(read_records(out)) == len(plan)

    def test_new_cells_only_are_executed(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(WorkPlan.from_product(repo, ["merge_lpt"]), out)
        grown = WorkPlan.from_product(repo, ["merge_lpt", "three_halves"])
        result = run_plan(grown, out)
        assert result.cache_hits == len(repo)
        assert result.executed == len(repo)

    def test_no_resume_reexecutes_and_truncates(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        run_plan(plan, out)
        result = run_plan(plan, out, resume=False)
        assert result.executed == len(plan)
        assert result.cache_hits == 0
        # The file was rewritten, not appended: no duplicate cells.
        assert len(read_records(out)) == len(plan)

    def test_resume_after_partial_jsonl(self, plan, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(plan, out)
        lines = out.read_text().splitlines()
        # Simulate a sweep killed mid-write: keep 5 complete records plus
        # a torn half-line.
        out.write_text("\n".join(lines[:5]) + "\n" + lines[5][: len(lines[5]) // 2])
        result = run_plan(plan, out)
        assert result.cache_hits == 5
        assert result.executed == len(plan) - 5
        assert result.errors == 0
        # The file now contains every cell exactly once (torn tail aside).
        keys = {
            cache_key(r.instance_hash, r.algorithm, r.params)
            for r in read_records(out)
        }
        assert len(keys) == len(plan)


@pytest.fixture
def fake_algorithm():
    """Register a throwaway solver under a temporary name."""
    registered = []

    def _register(name, func):
        registry._REGISTRY[name] = func
        registered.append(name)
        return name

    yield _register
    for name in registered:
        registry._REGISTRY.pop(name, None)


class TestAtomicFinalize:
    """Regression suite for the atomic canonical output: the JSONL file
    is promoted with ``os.replace`` only on a completed sweep, so a kill
    mid-merge can never leave a truncated canonical file for a later
    resume (or the service cache) to adopt as if it were complete."""

    def test_no_staging_file_survives_a_completed_sweep(
        self, repo, tmp_path
    ):
        out = tmp_path / "sweep.jsonl"
        run_plan(WorkPlan.from_product(repo, ["merge_lpt"]), out)
        assert out.exists()
        assert not staging_path(out).exists()

    def test_cached_rerun_does_not_touch_the_canonical_file(
        self, repo, tmp_path
    ):
        out = tmp_path / "sweep.jsonl"
        plan = WorkPlan.from_product(repo, ["merge_lpt"])
        run_plan(plan, out)
        before = out.read_bytes()
        result = run_plan(plan, out)
        assert result.cache_hits == len(plan)
        assert out.read_bytes() == before
        assert not staging_path(out).exists()

    def test_interrupt_preserves_canonical_and_stages_progress(
        self, repo, fake_algorithm, tmp_path
    ):
        """An interrupt mid-sweep leaves the canonical file exactly as
        the previous completed sweep wrote it; the cells that did finish
        are staged and adopted by the next resume."""

        def interrupt(instance, **kwargs):
            raise KeyboardInterrupt

        fake_algorithm("_interrupt_cell", interrupt)
        out = tmp_path / "sweep.jsonl"
        ref = next(iter(repo))
        baseline = WorkPlan()
        baseline.add(ref, "merge_lpt")
        run_plan(baseline, out)
        before = out.read_bytes()

        grown = WorkPlan()
        grown.add(ref, "merge_lpt")
        grown.add(ref, "_interrupt_cell")
        grown.add(ref, "three_halves")
        with pytest.raises(KeyboardInterrupt):
            run_plan(grown, out)
        # The canonical file was never touched mid-sweep.
        assert out.read_bytes() == before
        # The staging file holds the adopted prior record, ready for resume.
        staged = read_records(staging_path(out))
        assert [rec.algorithm for rec in staged] == ["merge_lpt"]

        fake_algorithm(
            "_interrupt_cell",
            lambda instance, **kwargs: registry.get_algorithm("merge_lpt")(
                instance
            ),
        )
        result = run_plan(grown, out)
        assert result.cache_hits == 1
        assert result.executed == 2
        assert result.errors == 0
        assert not staging_path(out).exists()
        assert len(read_records(out)) == 3

    def test_kill_mid_merge_is_recoverable(self, tmp_path, fake_algorithm):
        """Acceptance: SIGKILL the sweep process mid-merge; the canonical
        file stays byte-identical to the last completed sweep, completed
        cells survive in the staging file, and the next resume adopts
        them and finishes the plan."""
        out = tmp_path / "sweep.jsonl"
        inst = generate("uniform", 2, 6, 0)
        repo = InstanceRepository()
        ref = repo.add(inst, name="victim")
        baseline = WorkPlan()
        baseline.add(ref, "merge_lpt")
        run_plan(baseline, out)
        before = out.read_bytes()

        script = tmp_path / "kill_mid_merge.py"
        script.write_text(
            textwrap.dedent(
                """
                import os, signal, sys

                from repro.algorithms import registry
                from repro.runner import InstanceRepository, WorkPlan, run_plan
                from repro.workloads import generate

                def _kill(instance, **kwargs):
                    os.kill(os.getpid(), signal.SIGKILL)

                registry._REGISTRY["_kill_mid_merge"] = _kill
                repo = InstanceRepository()
                ref = repo.add(generate("uniform", 2, 6, 0), name="victim")
                plan = WorkPlan()
                plan.add(ref, "merge_lpt")
                plan.add(ref, "_kill_mid_merge")
                plan.add(ref, "three_halves")
                run_plan(plan, sys.argv[1])
                """
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_DIR)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, str(script), str(out)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -9, proc.stderr

        # The canonical file is byte-identical to the completed sweep —
        # never truncated, never partially merged.
        assert out.read_bytes() == before
        staged = read_records(staging_path(out))
        assert [rec.algorithm for rec in staged] == ["merge_lpt"]

        fake_algorithm(
            "_kill_mid_merge",
            lambda instance, **kwargs: registry.get_algorithm("merge_lpt")(
                instance
            ),
        )
        plan = WorkPlan()
        plan.add(ref, "merge_lpt")
        plan.add(ref, "_kill_mid_merge")
        plan.add(ref, "three_halves")
        result = run_plan(plan, out)
        assert result.cache_hits == 1  # adopted from the staging file
        assert result.executed == 2
        assert result.errors == 0
        assert not staging_path(out).exists()
        assert len(read_records(out)) == 3


class TestFailureIsolation:
    def test_unknown_algorithm_is_error_record(self, repo, tmp_path):
        plan = WorkPlan.from_product(repo, ["merge_lpt", "no_such_algo"])
        result = run_plan(plan, tmp_path / "sweep.jsonl")
        assert result.errors == len(repo)
        bad = [r for r in result.records if not r.ok]
        assert all(r.algorithm == "no_such_algo" for r in bad)
        assert all("no_such_algo" in r.error for r in bad)
        # Healthy cells still completed.
        assert sum(1 for r in result.records if r.ok) == len(repo)

    def test_solver_exception_is_error_record(self, repo):
        def exploding(instance, **kwargs):
            raise RuntimeError("boom")

        registry._REGISTRY["_exploding_test"] = exploding
        try:
            plan = WorkPlan.from_product(repo, ["_exploding_test", "merge_lpt"])
            result = run_plan(plan)
            assert result.errors == len(repo)
            bad = [r for r in result.records if not r.ok]
            assert all("boom" in r.error for r in bad)
        finally:
            del registry._REGISTRY["_exploding_test"]

    def test_errors_retried_on_resume(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        plan = WorkPlan.from_product(repo, ["no_such_algo"])
        run_plan(plan, out)
        result = run_plan(plan, out)
        assert result.executed == len(plan)  # errors are not cache hits
        result = run_plan(plan, out, retry_errors=False)
        assert result.executed == 0
        assert result.cache_hits == len(plan)


class TestParallelAcceptance:
    def test_twenty_plus_cells_four_workers_then_full_cache_hit(
        self, tmp_path
    ):
        """Acceptance: ≥20 cells with --workers 4 produce a complete JSONL
        result set, and re-running is a 100% cache hit."""
        repo = InstanceRepository.from_families(
            ["uniform", "big_jobs"], [2, 3], [6], [0, 1]
        )
        plan = WorkPlan.from_product(
            repo, ["three_halves", "five_thirds", "merge_lpt"]
        )
        assert len(plan) >= 20
        out = tmp_path / "sweep.jsonl"

        first = run_plan(plan, out, workers=4)
        assert first.executed == len(plan)
        assert first.errors == 0
        on_disk = read_records(out)
        assert len(on_disk) == len(plan)
        assert all(rec.ok and rec.valid for rec in on_disk)

        second = run_plan(plan, out, workers=4)
        assert second.executed == 0
        assert second.cache_hits == len(plan)

    def test_worker_failure_isolated_across_pool(self, tmp_path):
        repo = InstanceRepository.from_families(["uniform"], [2, 3], [6], [0, 1])
        plan = WorkPlan.from_product(repo, ["merge_lpt", "no_such_algo"])
        result = run_plan(plan, tmp_path / "sweep.jsonl", workers=4)
        assert result.errors == len(repo)
        assert sum(1 for r in result.records if r.ok) == len(repo)


class TestRecordRoundtrip:
    def test_jsonl_roundtrip_preserves_exact_values(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        result = run_plan(WorkPlan.from_product(repo, ["three_halves"]), out)
        # Match by cache key: disk order is backend-dependent (the
        # sharded backend writes the canonical key-ordered stream).
        loaded = {rec.key: rec for rec in read_records(out)}
        assert len(loaded) == len(result.records)
        for mem in result.records:
            disk = loaded[mem.key]
            assert disk.makespan == mem.makespan
            assert disk.lower_bound == mem.lower_bound
            assert disk.ratio == mem.ratio
            assert disk.meta == mem.meta

    def test_non_json_params_serialize_and_cache(self, repo, tmp_path):
        """Fraction-valued params must not crash record writing, and the
        canonicalized form must still cache-hit on re-run."""
        out = tmp_path / "sweep.jsonl"
        grid = [{"epsilon": Fraction(1, 3)}]
        plan = WorkPlan.from_product(repo, ["merge_lpt"], params_grid=grid)
        first = run_plan(plan, out)
        assert first.errors in (0, len(plan))  # solver may reject the kwarg
        assert len(read_records(out)) == len(plan)
        second = run_plan(
            WorkPlan.from_product(repo, ["merge_lpt"], params_grid=grid),
            out,
            retry_errors=False,
        )
        assert second.executed == 0
        assert second.cache_hits == len(plan)

    def test_jsonl_lines_are_valid_json(self, repo, tmp_path):
        out = tmp_path / "sweep.jsonl"
        run_plan(WorkPlan.from_product(repo, ["merge_lpt"]), out)
        for line in out.read_text().splitlines():
            obj = json.loads(line)
            assert obj["status"] == "ok"
            assert Fraction(obj["makespan"]) > 0
