"""Tests for the machine-readable perf benchmarks (`repro.runner.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner.perf import (
    largest_size_speedups,
    merge_bench_runs,
    run_approx_suite,
    run_baselines_suite,
    run_runtime_scaling,
    write_bench_json,
)


def test_baselines_suite_records_naive_comparison():
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    assert data["config"]["suite"] == "baselines"
    cells = data["results"]
    assert {c["algorithm"] for c in cells} == {
        "class_greedy",
        "list_lpt",
        "merge_lpt",
    }
    for cell in cells:
        assert cell["valid"], cell.get("error")
        assert cell["suite"] == "baselines"
        # Below the cutoff every cell carries the quadratic-loop delta.
        assert cell["naive_median_s"] > 0
        assert cell["speedup_vs_naive"] > 0


def test_baselines_suite_skips_naive_above_cutoff():
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_cutoff=10
    )
    for cell in data["results"]:
        assert "naive_median_s" not in cell
        assert "speedup_vs_naive" not in cell


def test_approx_suite_records_reference_comparison():
    data = run_approx_suite(
        sizes=(60,), repeats=1, naive_repeats=1
    )
    assert data["config"]["suite"] == "approx"
    cells = data["results"]
    assert {c["algorithm"] for c in cells} == {
        "five_thirds",
        "three_halves",
        "no_huge",
    }
    for cell in cells:
        assert cell["valid"], cell.get("error")
        assert cell["suite"] == "approx"
        assert cell["family"] in ("mh_stress", "packed_small")
        # Machines scale with the class-count knob, not a fixed m.
        assert cell["machines"] > 8
        assert cell["naive_median_s"] > 0
        assert cell["speedup_vs_naive"] > 0


def test_approx_suite_skips_naive_above_cutoff():
    data = run_approx_suite(
        sizes=(60,), repeats=1, naive_cutoff=10
    )
    for cell in data["results"]:
        assert "naive_median_s" not in cell
        assert "speedup_vs_naive" not in cell


def test_approx_suite_rejects_non_approx_algorithms():
    with pytest.raises(ValueError, match="stress family"):
        run_approx_suite(sizes=(30,), algorithms=("class_greedy",))


def test_merge_bench_runs_concatenates_suites():
    default = run_runtime_scaling(
        sizes=(20,), machines=3, algorithms=("merge_lpt",), repeats=1
    )
    baselines = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    merged = merge_bench_runs(default, baselines)
    assert set(merged["config"]["suites"]) == {"default", "baselines"}
    assert len(merged["results"]) == (
        len(default["results"]) + len(baselines["results"])
    )
    headline = largest_size_speedups(merged, key="speedup_vs_naive")
    assert set(headline) == {"class_greedy", "list_lpt", "merge_lpt"}


def test_write_bench_json_records_naive_headline(tmp_path):
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    out = tmp_path / "bench.json"
    written = write_bench_json(out, data)
    assert "largest_size_speedups_vs_naive" in written
    assert json.loads(out.read_text()) == written


def test_cli_bench_suite_approx(tmp_path, capsys):
    out = tmp_path / "BENCH_approx.json"
    code = main(
        [
            "bench",
            "--suite",
            "approx",
            "--sizes",
            "60",
            "--repeats",
            "1",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "kernel vs pre-kernel quadratic loop" in printed
    data = json.loads(out.read_text())
    assert data["config"]["suite"] == "approx"
    assert set(data["largest_size_speedups_vs_naive"]) == {
        "five_thirds",
        "three_halves",
        "no_huge",
    }


def test_cli_bench_suite_baselines(tmp_path, capsys):
    out = tmp_path / "BENCH_baselines.json"
    code = main(
        [
            "bench",
            "--suite",
            "baselines",
            "--sizes",
            "24",
            "-m",
            "3",
            "--repeats",
            "1",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "vs naive" in printed
    assert "kernel vs pre-kernel quadratic loop" in printed
    data = json.loads(out.read_text())
    assert data["config"]["suite"] == "baselines"
