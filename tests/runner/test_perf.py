"""Tests for the machine-readable perf benchmarks (`repro.runner.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner.perf import (
    check_regressions,
    largest_size_speedups,
    merge_bench_runs,
    run_approx_suite,
    run_baselines_suite,
    run_eptas_suite,
    run_kernel_suite,
    run_obs_suite,
    run_runtime_scaling,
    write_bench_json,
)


def test_baselines_suite_records_naive_comparison():
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    assert data["config"]["suite"] == "baselines"
    cells = data["results"]
    assert {c["algorithm"] for c in cells} == {
        "class_greedy",
        "list_lpt",
        "merge_lpt",
    }
    for cell in cells:
        assert cell["valid"], cell.get("error")
        assert cell["suite"] == "baselines"
        # Below the cutoff every cell carries the quadratic-loop delta.
        assert cell["naive_median_s"] > 0
        assert cell["speedup_vs_naive"] > 0


def test_baselines_suite_skips_naive_above_cutoff():
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_cutoff=10
    )
    for cell in data["results"]:
        assert "naive_median_s" not in cell
        assert "speedup_vs_naive" not in cell


def test_approx_suite_records_reference_comparison():
    data = run_approx_suite(
        sizes=(60,), repeats=1, naive_repeats=1
    )
    assert data["config"]["suite"] == "approx"
    cells = data["results"]
    assert {c["algorithm"] for c in cells} == {
        "five_thirds",
        "three_halves",
        "no_huge",
    }
    for cell in cells:
        assert cell["valid"], cell.get("error")
        assert cell["suite"] == "approx"
        assert cell["family"] in ("mh_stress", "packed_small")
        # Machines scale with the class-count knob, not a fixed m.
        assert cell["machines"] > 8
        assert cell["naive_median_s"] > 0
        assert cell["speedup_vs_naive"] > 0


def test_approx_suite_skips_naive_above_cutoff():
    data = run_approx_suite(
        sizes=(60,), repeats=1, naive_cutoff=10
    )
    for cell in data["results"]:
        assert "naive_median_s" not in cell
        assert "speedup_vs_naive" not in cell


def test_approx_suite_rejects_non_approx_algorithms():
    with pytest.raises(ValueError, match="stress family"):
        run_approx_suite(sizes=(30,), algorithms=("class_greedy",))


def test_merge_bench_runs_concatenates_suites():
    default = run_runtime_scaling(
        sizes=(20,), machines=3, algorithms=("merge_lpt",), repeats=1
    )
    baselines = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    merged = merge_bench_runs(default, baselines)
    assert set(merged["config"]["suites"]) == {"default", "baselines"}
    assert len(merged["results"]) == (
        len(default["results"]) + len(baselines["results"])
    )
    headline = largest_size_speedups(merged, key="speedup_vs_naive")
    assert set(headline) == {"class_greedy", "list_lpt", "merge_lpt"}


def test_write_bench_json_records_naive_headline(tmp_path):
    data = run_baselines_suite(
        sizes=(24,), machines=3, repeats=1, naive_repeats=1
    )
    out = tmp_path / "bench.json"
    written = write_bench_json(out, data)
    assert "largest_size_speedups_vs_naive" in written
    assert json.loads(out.read_text()) == written


def test_cli_bench_suite_approx(tmp_path, capsys):
    out = tmp_path / "BENCH_approx.json"
    code = main(
        [
            "bench",
            "--suite",
            "approx",
            "--sizes",
            "60",
            "--repeats",
            "1",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "kernel vs pre-kernel quadratic loop" in printed
    data = json.loads(out.read_text())
    assert data["config"]["suite"] == "approx"
    assert set(data["largest_size_speedups_vs_naive"]) == {
        "five_thirds",
        "three_halves",
        "no_huge",
    }


def test_kernel_suite_records_object_comparison():
    data = run_kernel_suite(
        sizes=(40,),
        algorithms=("class_greedy", "five_thirds"),
        repeats=2,
    )
    assert data["config"]["suite"] == "kernel"
    # Cross-solve buffer reuse really happened: the shared arena served
    # at least one buffer from its pools after the first solve.
    assert data["config"]["arena"]["hits"] > 0
    cells = data["results"]
    assert {c["algorithm"] for c in cells} == {
        "class_greedy",
        "five_thirds",
    }
    for cell in cells:
        assert cell["valid"], cell.get("error")
        assert cell["suite"] == "kernel"
        assert cell["median_s"] > 0
        assert cell["object_median_s"] > 0
        assert cell["speedup_vs_object"] > 0
        assert cell["repeats"] == 2


def test_kernel_suite_rejects_unknown_algorithms():
    with pytest.raises(ValueError, match="kernel-suite grid"):
        run_kernel_suite(sizes=(30,), algorithms=("eptas",))


def test_write_bench_json_records_object_headline(tmp_path):
    data = run_kernel_suite(
        sizes=(30,), algorithms=("merge_lpt",), repeats=1
    )
    written = write_bench_json(tmp_path / "bench.json", data)
    assert set(written["largest_size_speedups_vs_object"]) == {
        "merge_lpt"
    }


def _fake_bench(median_by_cell, **headlines):
    return {
        "results": [
            {"algorithm": algo, "n_target": n, "median_s": median}
            for (algo, n), median in median_by_cell.items()
        ],
        **headlines,
    }


class TestCheckRegressions:
    def test_within_tolerance_passes(self):
        base = _fake_bench({("merge_lpt", 100): 1.0})
        data = _fake_bench({("merge_lpt", 100): 1.05})
        assert check_regressions(data, base, 10.0) == []

    def test_slower_cell_is_flagged(self):
        base = _fake_bench({("merge_lpt", 100): 1.0})
        data = _fake_bench({("merge_lpt", 100): 1.5})
        failures = check_regressions(data, base, 10.0)
        assert len(failures) == 1
        assert "merge_lpt @ n_target=100" in failures[0]
        assert "+50.0%" in failures[0]

    def test_unmatched_cells_are_ignored(self):
        base = _fake_bench({("class_greedy", 50): 1.0})
        data = _fake_bench({("merge_lpt", 100): 9.0})
        assert check_regressions(data, base, 10.0) == []

    def test_headline_speedup_drop_is_flagged(self):
        base = _fake_bench(
            {}, largest_size_speedups_vs_naive={"five_thirds": 1.2}
        )
        data = _fake_bench(
            {}, largest_size_speedups_vs_naive={"five_thirds": 0.8}
        )
        failures = check_regressions(data, base, 10.0)
        assert len(failures) == 1
        assert "largest_size_speedups_vs_naive[five_thirds]" in failures[0]

    def test_headline_within_tolerance_passes(self):
        base = _fake_bench(
            {}, largest_size_speedups_vs_object={"no_huge": 1.00}
        )
        data = _fake_bench(
            {}, largest_size_speedups_vs_object={"no_huge": 0.95}
        )
        assert check_regressions(data, base, 10.0) == []


def test_cli_bench_suite_kernel(tmp_path, capsys):
    out = tmp_path / "BENCH_kernel.json"
    code = main(
        [
            "bench",
            "--suite",
            "kernel",
            "--sizes",
            "30",
            "--algorithms",
            "merge_lpt",
            "class_greedy",
            "--repeats",
            "1",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "array kernel vs object kernel" in printed
    data = json.loads(out.read_text())
    assert data["config"]["suite"] == "kernel"
    assert set(data["largest_size_speedups_vs_object"]) == {
        "merge_lpt",
        "class_greedy",
    }


def test_cli_bench_fail_on_regression_gate(tmp_path, capsys):
    """End-to-end regression gate: green against itself, exit 3 against
    a fabricated impossibly-fast baseline, exit 2 with no baseline."""
    out = tmp_path / "BENCH_gate.json"
    argv = [
        "bench",
        "--suite",
        "baselines",
        "--sizes",
        "24",
        "-m",
        "3",
        "--repeats",
        "1",
        "-o",
        str(out),
    ]
    assert main(argv) == 0
    # A just-written run of the same grid cannot regress >400% vs itself.
    code = main(
        argv + ["--fail-on-regression", "400",
                "--regression-baseline", str(out)]
    )
    assert code == 0
    assert "no perf regression" in capsys.readouterr().out

    fast = json.loads(out.read_text())
    for cell in fast["results"]:
        cell["median_s"] = cell["median_s"] / 1e6
    gate = tmp_path / "impossible.json"
    gate.write_text(json.dumps(fast))
    code = main(
        argv + ["--fail-on-regression", "10",
                "--regression-baseline", str(gate)]
    )
    assert code == 3
    assert "perf regression:" in capsys.readouterr().err

    code = main(
        argv
        + [
            "--fail-on-regression",
            "10",
            "--regression-baseline",
            str(tmp_path / "missing.json"),
        ]
    )
    assert code == 2
    code = main(argv + ["--fail-on-regression", "10"])
    assert code == 2


def test_cli_bench_suite_baselines(tmp_path, capsys):
    out = tmp_path / "BENCH_baselines.json"
    code = main(
        [
            "bench",
            "--suite",
            "baselines",
            "--sizes",
            "24",
            "-m",
            "3",
            "--repeats",
            "1",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "vs naive" in printed
    assert "kernel vs pre-kernel quadratic loop" in printed
    data = json.loads(out.read_text())
    assert data["config"]["suite"] == "baselines"


def test_obs_suite_measures_tracing_overhead():
    data = run_obs_suite(n_target=80, machines=3, repeats=2)
    assert data["config"]["suite"] == "obs"
    assert data["config"]["overhead_budget_pct"] == 2.0
    (cell,) = data["results"]
    assert cell["valid"], cell.get("error")
    assert cell["suite"] == "obs"
    # median_s is the *null-tracer* timing: the two-run cell-median
    # regression gate guards the disabled hot path.
    assert cell["median_s"] > 0
    assert cell["traced_median_s"] > 0
    assert cell["speedup_vs_traced"] == pytest.approx(
        cell["traced_median_s"] / cell["median_s"]
    )
    assert cell["overhead_pct"] == pytest.approx(
        100 * (cell["speedup_vs_traced"] - 1), abs=0.01
    )


def test_write_bench_json_records_traced_headline(tmp_path):
    data = run_obs_suite(n_target=60, machines=3, repeats=1)
    out = tmp_path / "BENCH_obs.json"
    write_bench_json(out, data)
    written = json.loads(out.read_text())
    headline = written["largest_size_speedups_vs_traced"]
    assert set(headline) == {"three_halves"}
    assert headline["three_halves"] > 0


def test_eptas_suite_attaches_phase_breakdown():
    data = run_eptas_suite(
        cells=(("uniform", 2, 6, 0),), repeats=1
    )
    for cell in data["results"]:
        assert cell["valid"], cell.get("error")
        phases = cell["phase_s"]
        assert "eptas.solve" in phases
        assert "eptas.classify" in phases
        # The headline phase artifact: % of the solve inside the IP.
        assert 0.0 <= cell["ip_solve_pct"] <= 100.0
