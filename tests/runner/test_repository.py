"""Tests for :mod:`repro.runner.repository`."""

import json

import pytest

from repro.runner import InstanceRepository
from repro.workloads import generate


class TestFromFamilies:
    def test_grid_size_and_names(self):
        repo = InstanceRepository.from_families(
            ["uniform", "big_jobs"], [2, 4], [6], [0, 1]
        )
        assert len(repo) == 8
        assert "uniform-m2-s6-seed0" in repo.names()
        assert "big_jobs-m4-s6-seed1" in repo.names()

    def test_meta_carries_provenance(self):
        repo = InstanceRepository.from_families(["uniform"], [3], [6], [7])
        (ref,) = list(repo)
        assert ref.meta == {"family": "uniform", "m": 3, "size": 6, "seed": 7}
        assert ref.instance.num_machines == 3

    def test_generation_is_deterministic(self):
        a = InstanceRepository.from_families(["uniform"], [2], [6], [0])
        b = InstanceRepository.from_families(["uniform"], [2], [6], [0])
        assert list(a)[0].instance == list(b)[0].instance


class TestFromDirectory:
    def test_loads_json_files(self, tmp_path):
        for seed in range(3):
            inst = generate("uniform", 2, 5, seed)
            (tmp_path / f"inst{seed}.json").write_text(
                json.dumps(inst.to_dict())
            )
        repo = InstanceRepository.from_directory(tmp_path)
        assert len(repo) == 3
        assert repo.names() == ["inst0", "inst1", "inst2"]
        assert all(ref.meta["source"].endswith(".json") for ref in repo)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            InstanceRepository.from_directory(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            InstanceRepository.from_directory(tmp_path)


class TestAdd:
    def test_duplicate_name_rejected(self):
        repo = InstanceRepository()
        inst = generate("uniform", 2, 5, 0)
        repo.add(inst, name="a")
        with pytest.raises(ValueError):
            repo.add(inst, name="a")

    def test_name_defaults_to_instance_name(self):
        repo = InstanceRepository()
        ref = repo.add(generate("uniform", 2, 5, 0))
        assert ref.name == ref.instance.name
