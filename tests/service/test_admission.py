"""Admission-queue tests: backpressure, fairness, cancel, close."""

import threading

import pytest

from repro.service.admission import AdmissionFull, AdmissionQueue


class TestBackpressure:
    def test_submit_over_limit_raises(self):
        queue = AdmissionQueue(limit=2)
        queue.submit("a", 1)
        queue.submit("a", 2)
        with pytest.raises(AdmissionFull, match="full"):
            queue.submit("a", 3)
        assert queue.depth == 2

    def test_per_client_limit(self):
        queue = AdmissionQueue(limit=10, per_client_limit=1)
        queue.submit("a", 1)
        with pytest.raises(AdmissionFull, match="'a'"):
            queue.submit("a", 2)
        # Other clients are unaffected by a's lane being full.
        queue.submit("b", 3)

    def test_drain_reopens_capacity(self):
        queue = AdmissionQueue(limit=1)
        queue.submit("a", 1)
        assert queue.next_batch(timeout=0) == [("a", 1)]
        queue.submit("a", 2)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(limit=0)


class TestFairness:
    def test_round_robin_across_clients(self):
        """A flooding client contributes at most one request per rotation
        pass — the drain order interleaves clients."""
        queue = AdmissionQueue(limit=16)
        for i in range(4):
            queue.submit("flood", f"f{i}")
        queue.submit("meek", "m0")
        batch = queue.next_batch(timeout=0)
        order = [item for _client, item in batch]
        # meek's single request must not sit behind all four floods.
        assert order.index("m0") <= 1
        assert order == ["f0", "m0", "f1", "f2", "f3"]

    def test_per_client_fifo_is_preserved(self):
        queue = AdmissionQueue(limit=16)
        for i in range(3):
            queue.submit("a", f"a{i}")
            queue.submit("b", f"b{i}")
        batch = queue.next_batch(timeout=0)
        for client in ("a", "b"):
            lane = [item for cid, item in batch if cid == client]
            assert lane == sorted(lane)

    def test_max_items_caps_the_batch(self):
        queue = AdmissionQueue(limit=16)
        for i in range(5):
            queue.submit("a", i)
        assert len(queue.next_batch(max_items=2, timeout=0)) == 2
        assert queue.depth == 3


class TestCancel:
    def test_cancel_removes_matching_items(self):
        queue = AdmissionQueue(limit=16)
        queue.submit("a", {"id": "r1"})
        queue.submit("a", {"id": "r2"})
        assert queue.cancel("a", lambda item: item["id"] == "r1") == 1
        assert queue.depth == 1
        batch = queue.next_batch(timeout=0)
        assert [item["id"] for _c, item in batch] == ["r2"]

    def test_cancel_unknown_client_is_a_noop(self):
        queue = AdmissionQueue(limit=16)
        assert queue.cancel("ghost", lambda item: True) == 0


class TestCloseAndBlocking:
    def test_empty_timeout_returns_empty_batch(self):
        queue = AdmissionQueue(limit=4)
        assert queue.next_batch(timeout=0.01) == []

    def test_closed_and_drained_returns_none(self):
        queue = AdmissionQueue(limit=4)
        queue.submit("a", 1)
        queue.close()
        # Close still drains what was admitted...
        assert queue.next_batch(timeout=0) == [("a", 1)]
        # ...then signals the dispatcher to exit.
        assert queue.next_batch(timeout=0) is None

    def test_submit_after_close_is_rejected(self):
        queue = AdmissionQueue(limit=4)
        queue.close()
        with pytest.raises(AdmissionFull, match="shutting down"):
            queue.submit("a", 1)

    def test_blocked_consumer_wakes_on_submit(self):
        queue = AdmissionQueue(limit=4)
        got = []

        def consume():
            got.append(queue.next_batch(timeout=5))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.submit("a", "wake")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [[("a", "wake")]]

    def test_blocked_consumer_wakes_on_close(self):
        queue = AdmissionQueue(limit=4)
        got = []

        def consume():
            got.append(queue.next_batch(timeout=5))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]
