"""Wire-protocol tests: golden frames, round trips, rejection paths."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    cancel_request,
    decode_frame,
    encode_frame,
    shutdown_request,
    solve_request,
    status_request,
    sweep_request,
    validate_request,
)


class TestGoldenFrames:
    """The on-wire bytes of a frame are deterministic (sorted keys,
    compact separators, one trailing newline) — goldens pin them."""

    def test_status_request_golden(self):
        assert (
            encode_frame(status_request("req-1"))
            == b'{"id":"req-1","type":"status","v":1}\n'
        )

    def test_shutdown_request_golden(self):
        assert (
            encode_frame(shutdown_request("req-9"))
            == b'{"id":"req-9","type":"shutdown","v":1}\n'
        )

    def test_cancel_request_golden(self):
        assert encode_frame(cancel_request("req-2", "req-1")) == (
            b'{"id":"req-2","target":"req-1","type":"cancel","v":1}\n'
        )

    def test_solve_request_golden(self):
        frame = solve_request(
            "req-3", {"name": "x", "num_machines": 2, "jobs": []}, "merge_lpt"
        )
        assert encode_frame(frame) == (
            b'{"algorithm":"merge_lpt","id":"req-3",'
            b'"instance":{"jobs":[],"name":"x","num_machines":2},'
            b'"params":{},"type":"solve","v":1}\n'
        )

    def test_result_frame_golden(self):
        frame = {"type": "result", "id": "req-3", "cached": True,
                 "record": {"status": "ok"}}
        assert encode_frame(frame) == (
            b'{"cached":true,"id":"req-3","record":{"status":"ok"},'
            b'"type":"result","v":1}\n'
        )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame",
        [
            status_request("a"),
            shutdown_request("b"),
            cancel_request("c", "a"),
            solve_request("d", {"name": "i", "num_machines": 1, "jobs": []},
                          "three_halves", {"epsilon": 0.5}),
            sweep_request("e", ["merge_lpt"], machines=(2, 3), seeds=(0,)),
        ],
    )
    def test_requests_round_trip(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert decoded == dict(frame)
        assert validate_request(decoded) == dict(frame)

    def test_version_is_injected_when_absent(self):
        decoded = decode_frame(encode_frame({"type": "status", "id": "x"}))
        assert decoded["v"] == PROTOCOL_VERSION


class TestRejection:
    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(b"{nope\n")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_frame(b"[1,2]\n")

    def test_version_mismatch(self):
        line = json.dumps({"v": 99, "type": "status", "id": "x"})
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(line)

    def test_missing_version(self):
        line = json.dumps({"type": "status", "id": "x"})
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(line)

    def test_unknown_type(self):
        line = json.dumps({"v": 1, "type": "frobnicate", "id": "x"})
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame(line)

    def test_encode_requires_type(self):
        with pytest.raises(ProtocolError, match="no 'type'"):
            encode_frame({"id": "x"})

    def test_response_type_is_not_a_request(self):
        frame = decode_frame(
            json.dumps({"v": 1, "type": "result", "id": "x"})
        )
        with pytest.raises(ProtocolError, match="not a request"):
            validate_request(frame)

    def test_request_without_id(self):
        frame = decode_frame(json.dumps({"v": 1, "type": "status"}))
        with pytest.raises(ProtocolError, match="no 'id'"):
            validate_request(frame)

    def test_solve_missing_instance(self):
        frame = decode_frame(
            json.dumps(
                {"v": 1, "type": "solve", "id": "x", "algorithm": "merge_lpt"}
            )
        )
        with pytest.raises(ProtocolError, match="missing 'instance'"):
            validate_request(frame)

    def test_cancel_missing_target(self):
        frame = decode_frame(
            json.dumps({"v": 1, "type": "cancel", "id": "x"})
        )
        with pytest.raises(ProtocolError, match="missing 'target'"):
            validate_request(frame)
