"""End-to-end tests of the scheduler service.

Everything runs in-process (server threads + client sockets over
loopback), so fake algorithms registered by the tests are visible to
the service's serial dispatch — which is how the cache-hit accounting
tests can assert *zero solver calls* with a counting shim.
"""

import threading

import pytest

from repro import Instance, solve
from repro.algorithms import registry
from repro.runner import (
    InstanceRepository,
    WorkPlan,
    canonical_stream,
    read_records,
    run_plan,
)
from repro.service import (
    SchedulerService,
    ServiceBusy,
    ServiceClient,
    ServiceError,
)
from repro.workloads import generate


@pytest.fixture
def fake_algorithm():
    """Register a throwaway solver under a temporary name."""
    registered = []

    def _register(name, func):
        registry._REGISTRY[name] = func
        registered.append(name)
        return name

    yield _register
    for name in registered:
        registry._REGISTRY.pop(name, None)


@pytest.fixture
def service(tmp_path):
    svc = SchedulerService(
        results_path=tmp_path / "service.jsonl", batch_window_s=0.0
    )
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    host, port = service.address
    with ServiceClient(host, port, timeout=60.0) as cli:
        yield cli


def _counting(counter):
    """A solver shim that counts invocations and delegates to merge_lpt."""

    def run(instance, **kwargs):
        counter["calls"] += 1
        return solve(instance, algorithm="merge_lpt")

    return run


class TestCacheHitAccounting:
    def test_second_identical_request_performs_zero_solver_calls(
        self, service, client, fake_algorithm
    ):
        counter = {"calls": 0}
        fake_algorithm("_counted", _counting(counter))
        inst = generate("uniform", 3, 8, 0)

        progress_frames = []
        first = client.solve(inst, "_counted", on_progress=progress_frames.append)
        assert not first.cached
        assert first.record.ok
        assert counter["calls"] == 1
        # Progress frames streamed for the solved request.
        assert [f["type"] for f in progress_frames] == ["progress"]
        assert progress_frames[0]["done"] == progress_frames[0]["total"] == 1

        second = client.solve(inst, "_counted")
        assert second.cached
        assert counter["calls"] == 1  # zero additional solver calls
        assert second.record.makespan == first.record.makespan

        status = client.status()
        assert status["cache_hits"] == 1
        assert status["solved"] == 1

    def test_cached_requests_stream_no_progress(
        self, service, client, fake_algorithm
    ):
        counter = {"calls": 0}
        fake_algorithm("_counted2", _counting(counter))
        inst = generate("uniform", 2, 6, 1)
        client.solve(inst, "_counted2")
        frames = []
        outcome = client.solve(inst, "_counted2", on_progress=frames.append)
        assert outcome.cached and frames == []

    def test_distinct_params_are_distinct_cache_entries(
        self, service, client, fake_algorithm
    ):
        counter = {"calls": 0}

        def run(instance, epsilon=None, **kwargs):
            counter["calls"] += 1
            return solve(instance, algorithm="merge_lpt")

        fake_algorithm("_parametric", run)
        inst = generate("uniform", 2, 6, 2)
        a = client.solve(inst, "_parametric", {"epsilon": 0.5})
        b = client.solve(inst, "_parametric", {"epsilon": 0.25})
        assert not a.cached and not b.cached
        assert counter["calls"] == 2

    def test_warm_restart_serves_from_the_results_file(
        self, tmp_path, fake_algorithm
    ):
        """A new service over an existing canonical file answers repeat
        requests without any solve — the cache survives restarts."""
        counter = {"calls": 0}
        fake_algorithm("_counted3", _counting(counter))
        inst = generate("uniform", 3, 8, 3)
        results = tmp_path / "service.jsonl"
        with SchedulerService(results_path=results) as first:
            with ServiceClient(*first.address) as cli:
                cli.solve(inst, "_counted3")
        assert counter["calls"] == 1
        with SchedulerService(results_path=results) as second:
            with ServiceClient(*second.address) as cli:
                outcome = cli.solve(inst, "_counted3")
        assert outcome.cached
        assert counter["calls"] == 1


class TestBatchingAndBackpressure:
    def _blocked_service(self, tmp_path, fake_algorithm, **kwargs):
        """A service plus a registered solver that parks the dispatcher
        until ``release`` is set (started is set once it is running)."""
        started, release = threading.Event(), threading.Event()

        def blocker(instance, **kw):
            started.set()
            release.wait(timeout=30)
            return solve(instance, algorithm="merge_lpt")

        fake_algorithm("_blocker", blocker)
        svc = SchedulerService(
            results_path=tmp_path / "service.jsonl",
            batch_window_s=0.0,
            **kwargs,
        )
        svc.start()
        return svc, started, release

    def test_admission_backpressure_sends_busy(
        self, tmp_path, fake_algorithm
    ):
        svc, started, release = self._blocked_service(
            tmp_path, fake_algorithm, queue_limit=1
        )
        try:
            with ServiceClient(*svc.address) as cli:
                r1 = cli.submit_solve(generate("uniform", 2, 6, 0), "_blocker")
                assert started.wait(timeout=30)
                # Dispatcher is busy: the queue (depth 1) fills ...
                r2 = cli.submit_solve(generate("uniform", 2, 6, 1), "merge_lpt")
                # ... and the next request is rejected with `busy`.
                r3 = cli.submit_solve(generate("uniform", 2, 6, 2), "merge_lpt")
                with pytest.raises(ServiceBusy, match="full"):
                    cli.collect(r3)
                release.set()
                assert cli.collect(r1).record.ok
                assert cli.collect(r2).record.ok
                assert cli.status()["rejected"] == 1
        finally:
            release.set()
            svc.stop()

    def test_identical_concurrent_requests_coalesce_into_one_solve(
        self, tmp_path, fake_algorithm
    ):
        svc, started, release = self._blocked_service(tmp_path, fake_algorithm)
        counter = {"calls": 0}
        fake_algorithm("_counted4", _counting(counter))
        inst = generate("uniform", 2, 6, 4)
        try:
            with ServiceClient(*svc.address) as cli:
                r0 = cli.submit_solve(generate("uniform", 2, 6, 0), "_blocker")
                assert started.wait(timeout=30)
                # Both identical requests queue behind the blocker and
                # land in the same dispatch batch -> one plan cell.
                ra = cli.submit_solve(inst, "_counted4")
                rb = cli.submit_solve(inst, "_counted4")
                # Wait for both admission acks before unblocking, so the
                # requests are provably queued together.
                assert cli.await_admission(ra)["type"] == "accepted"
                assert cli.await_admission(rb)["type"] == "accepted"
                release.set()
                a, b = cli.collect(ra), cli.collect(rb)
                assert counter["calls"] == 1
                assert {a.cached, b.cached} == {False, True}
                assert a.record.makespan == b.record.makespan
                assert cli.collect(r0).record.ok
                assert cli.status()["coalesced"] == 1
        finally:
            release.set()
            svc.stop()

    def test_queued_request_can_be_cancelled(self, tmp_path, fake_algorithm):
        svc, started, release = self._blocked_service(tmp_path, fake_algorithm)
        try:
            with ServiceClient(*svc.address) as cli:
                r1 = cli.submit_solve(generate("uniform", 2, 6, 0), "_blocker")
                assert started.wait(timeout=30)
                r2 = cli.submit_solve(generate("uniform", 2, 6, 1), "merge_lpt")
                assert cli.cancel(r2) is True
                # A request that was never queued cannot be cancelled.
                assert cli.cancel("req-999") is False
                release.set()
                assert cli.collect(r1).record.ok
        finally:
            release.set()
            svc.stop()


class TestConcurrentClients:
    def test_parallel_clients_each_get_their_own_results(self, service):
        host, port = service.address
        outcomes = {}

        def run_client(tag, seed):
            with ServiceClient(host, port) as cli:
                inst = generate("uniform", 2, 6, seed)
                outcomes[tag] = (cli.solve(inst, "merge_lpt"), inst)

        threads = [
            threading.Thread(target=run_client, args=(f"c{i}", i))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(outcomes) == 4
        for tag, (outcome, inst) in outcomes.items():
            assert outcome.record.ok
            reference = solve(inst, algorithm="merge_lpt")
            assert outcome.record.makespan == reference.makespan


class TestRecordsMatchBatchPath:
    def test_service_canonical_stream_equals_batch_sweep(
        self, tmp_path, service
    ):
        """The service's result file is byte-identical (canonical form)
        to the batch sweep that would have produced the same cells —
        the service *is* the batch path behind a socket."""
        # Distinct display names: generated instances share one name per
        # family/size, and the batch repository requires unique names.
        instances = []
        for seed in range(3):
            payload = generate("uniform", 2, 6, seed).to_dict()
            payload["name"] = f"svc-u{seed}"
            instances.append(Instance.from_dict(payload))
        with ServiceClient(*service.address) as cli:
            for inst in instances:
                for algorithm in ("merge_lpt", "three_halves"):
                    assert cli.solve(inst, algorithm).record.ok

        batch_out = tmp_path / "batch.jsonl"
        repo = InstanceRepository()
        for inst in instances:
            repo.add(inst)
        plan = WorkPlan.from_product(repo, ["merge_lpt", "three_halves"])
        run_plan(plan, batch_out)

        service_stream = canonical_stream(read_records(service.results_path))
        batch_stream = canonical_stream(read_records(batch_out))
        assert service_stream == batch_stream


class TestFailureIsolation:
    def test_solver_error_comes_back_as_an_error_record(
        self, service, client, fake_algorithm
    ):
        def exploding(instance, **kwargs):
            raise RuntimeError("boom")

        fake_algorithm("_exploding_svc", exploding)
        outcome = client.solve(generate("uniform", 2, 6, 0), "_exploding_svc")
        assert not outcome.record.ok
        assert "boom" in outcome.record.error
        # The service survives: the next request still works.
        assert client.solve(generate("uniform", 2, 6, 1), "merge_lpt").record.ok

    def test_unknown_algorithm_is_an_error_record(self, service, client):
        outcome = client.solve(generate("uniform", 2, 6, 0), "_no_such_algo")
        assert not outcome.record.ok

    def test_bad_instance_payload_is_an_error_frame(self, service, client):
        with pytest.raises(ServiceError, match="bad instance payload"):
            client.solve({"jobs": "nope"}, "merge_lpt")

    def test_error_records_are_not_cached(
        self, service, client, fake_algorithm
    ):
        attempts = {"calls": 0}

        def flaky(instance, **kwargs):
            attempts["calls"] += 1
            if attempts["calls"] == 1:
                raise RuntimeError("transient")
            return solve(instance, algorithm="merge_lpt")

        fake_algorithm("_flaky", flaky)
        inst = generate("uniform", 2, 6, 5)
        assert not client.solve(inst, "_flaky").record.ok
        # The retry is re-executed (no error-result cache hit) and wins.
        retry = client.solve(inst, "_flaky")
        assert retry.record.ok and not retry.cached
        assert attempts["calls"] == 2


class TestSweepRequests:
    def test_sweep_over_the_socket(self, service, client):
        progress = []
        summary = client.sweep(
            ["merge_lpt"],
            machines=(2,),
            sizes=(6,),
            seeds=(0, 1),
            on_progress=progress.append,
        )
        assert summary["executed"] == 2
        assert summary["errors"] == 0
        assert len(progress) == 2
        # A repeat sweep is served from the resume cache.
        again = client.sweep(["merge_lpt"], machines=(2,), sizes=(6,),
                             seeds=(0, 1))
        assert again["executed"] == 0
        assert again["cache_hits"] == 2


class TestSubmitCLI:
    """``repro submit`` driven against an in-process service."""

    @pytest.fixture
    def instance_file(self, tmp_path):
        import json

        inst = generate("uniform", 3, 6, 0)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(inst.to_dict()))
        return path

    def test_submit_solve_then_cache_hit(
        self, service, instance_file, capsys
    ):
        from repro.cli import main

        _host, port = service.address
        argv = [
            "submit", str(instance_file), "-a", "merge_lpt",
            "--port", str(port),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "ok (solved)" in first and "makespan" in first
        assert main(argv) == 0
        assert "ok (cache)" in capsys.readouterr().out

    def test_submit_status_and_refused_port(self, service, capsys):
        from repro.cli import main

        _host, port = service.address
        assert main(["submit", "--status", "--port", str(port)]) == 0
        assert "queue_depth" in capsys.readouterr().out
        # A port nobody listens on is a clean exit 2, not a traceback.
        dead_port = 1  # reserved tcpmux port: nothing listens there
        assert main(["submit", "--status", "--port", str(dead_port)]) == 2
        assert "no service" in capsys.readouterr().err

    def test_submit_requires_an_instance(self, service, capsys):
        from repro.cli import main

        _host, port = service.address
        assert main(["submit", "--port", str(port)]) == 2
        assert "instance file is required" in capsys.readouterr().err

    def test_serve_port_zero_is_valid_but_negative_is_not(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0"])
        assert args.port == 0
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["serve", "--port", "-1"])
        assert excinfo.value.code == 2


class TestTelemetry:
    def test_result_frames_carry_server_stamped_latency(
        self, service, client
    ):
        inst = generate("uniform", 3, 8, 5)
        outcome = client.solve(inst, "merge_lpt")
        assert isinstance(outcome.elapsed_ms, float)
        assert outcome.elapsed_ms >= 0.0
        # Cache hits are stamped too (admission -> cached answer).
        cached = client.solve(inst, "merge_lpt")
        assert cached.cached
        assert isinstance(cached.elapsed_ms, float)

    def test_progress_frames_carry_elapsed_ms(self, service, client):
        frames = []
        client.solve(
            generate("uniform", 2, 6, 6),
            "merge_lpt",
            on_progress=frames.append,
        )
        assert frames
        for frame in frames:
            assert isinstance(frame["elapsed_ms"], float)

    def test_elapsed_ms_is_volatile_not_canonical(self, service, client):
        outcome = client.solve(generate("uniform", 2, 6, 7), "merge_lpt")
        canonical = canonical_stream([outcome.record])
        assert "elapsed_ms" not in canonical

    def test_stats_request_returns_metrics_snapshot(self, service, client):
        inst = generate("uniform", 3, 8, 8)
        client.solve(inst, "merge_lpt")
        client.solve(inst, "merge_lpt")  # cache hit, still a request
        metrics = client.stats()
        assert metrics["cached_results"] >= 1
        assert metrics["queue_depth"] == 0
        assert metrics["backpressure_events"] == 0
        assert metrics["uptime_s"] >= 0.0
        counters = metrics["counters"]
        assert counters["solved"] == 1
        assert counters["cache_hits"] == 1
        # Both requests landed in the latency histogram.
        latency = metrics["latency_ms"]
        assert latency["count"] >= 2
        assert latency["max"] >= latency["p50"] >= 0.0


class TestShutdown:
    def test_clean_shutdown_stops_accepting(self, tmp_path):
        svc = SchedulerService(results_path=tmp_path / "service.jsonl")
        svc.start()
        host, port = svc.address
        with ServiceClient(host, port) as cli:
            cli.solve(generate("uniform", 2, 6, 0), "merge_lpt")
            cli.shutdown()  # blocks until the server says `bye`
        svc.serve_forever()  # returns promptly: shutdown already landed
        with pytest.raises((ConnectionRefusedError, OSError)):
            ServiceClient(host, port, timeout=2.0).connect()
        # The result file was finalized before the listener went away.
        assert len(read_records(svc.results_path)) == 1
