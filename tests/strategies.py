"""Shared hypothesis strategies for MSRS property tests."""

from __future__ import annotations

import hypothesis.strategies as st

from repro.core.instance import Instance


@st.composite
def instances(
    draw,
    max_machines: int = 6,
    max_classes: int = 8,
    max_jobs_per_class: int = 4,
    max_size: int = 20,
    min_classes: int = 1,
):
    """Random MSRS instances with integer sizes."""
    m = draw(st.integers(1, max_machines))
    k = draw(st.integers(min_classes, max_classes))
    classes = [
        draw(
            st.lists(
                st.integers(1, max_size),
                min_size=1,
                max_size=max_jobs_per_class,
            )
        )
        for _ in range(k)
    ]
    return Instance.from_class_sizes(classes, m)


@st.composite
def tiny_instances(draw, max_jobs: int = 7, max_size: int = 8):
    """Instances small enough for the exact solvers."""
    m = draw(st.integers(1, 3))
    k = draw(st.integers(1, 4))
    classes = []
    total = 0
    for _ in range(k):
        size = draw(st.integers(1, 3))
        size = min(size, max_jobs - total)
        if size <= 0:
            break
        classes.append(
            [draw(st.integers(1, max_size)) for _ in range(size)]
        )
        total += size
    if not classes:
        classes = [[draw(st.integers(1, max_size))]]
    return Instance.from_class_sizes(classes, m)


@st.composite
def no_huge_instances(draw, max_machines: int = 5, max_classes: int = 8):
    """Instances whose jobs are all small relative to the average load,
    so the standalone `Algorithm_no_huge` precondition usually holds."""
    m = draw(st.integers(1, max_machines))
    k = draw(st.integers(max(1, m), max_classes))
    classes = [
        draw(
            st.lists(st.integers(1, 6), min_size=2, max_size=5)
        )
        for _ in range(k)
    ]
    return Instance.from_class_sizes(classes, m)
