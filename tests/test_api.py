"""Public API smoke tests (the quickstart contract)."""

from fractions import Fraction

import pytest

import repro


def test_quickstart_snippet():
    inst = repro.Instance.from_class_sizes(
        [[5, 3], [4, 4], [6], [2, 2, 2]], 3
    )
    result = repro.solve(inst, algorithm="three_halves")
    repro.validate_schedule(inst, result.schedule)
    assert result.makespan <= Fraction(3, 2) * Fraction(result.lower_bound)


def test_all_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


def test_default_algorithm():
    inst = repro.Instance.from_class_sizes([[3], [2], [1]], 2)
    result = repro.solve(inst)
    assert result.algorithm in ("three_halves",)


def test_subpackages_importable():
    import repro.algorithms
    import repro.analysis
    import repro.core
    import repro.hardness
    import repro.ptas
    import repro.util
    import repro.workloads


def test_bounds_helpers():
    inst = repro.Instance.from_class_sizes([[5, 3], [4]], 2)
    bounds = repro.all_bounds(inst)
    assert bounds["lemma9_T"] >= bounds["max_class"] - 1
    assert repro.lower_bound_int(inst) >= 1
