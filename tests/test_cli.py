"""Tests for the command-line interface."""

import json
from fractions import Fraction

import pytest

from repro.algorithms import registry
from repro.algorithms.base import ScheduleResult
from repro.cli import main
from repro.core.schedule import Placement, Schedule
from repro.workloads import generate


@pytest.fixture
def instance_file(tmp_path):
    inst = generate("uniform", 3, 6, seed=0)
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(inst.to_dict()))
    return path


@pytest.fixture
def fake_algorithm():
    """Register a throwaway solver under a temporary name."""
    registered = []

    def _register(name, func):
        registry._REGISTRY[name] = func
        registered.append(name)
        return name

    yield _register
    for name in registered:
        registry._REGISTRY.pop(name, None)


def _sequential_schedule(inst, num_machines):
    """A trivially valid schedule: all jobs back-to-back on machine 0."""
    placements, clock = [], Fraction(0)
    for job in inst.jobs:
        placements.append(Placement(job=job, machine=0, start=clock))
        clock += job.size
    return Schedule(placements, num_machines)


def _overlapping_schedule(inst, num_machines):
    """An invalid schedule: every job starts at time zero on machine 0."""
    placements = [
        Placement(job=job, machine=0, start=Fraction(0)) for job in inst.jobs
    ]
    return Schedule(placements, num_machines)


class TestSolve:
    def test_solve_basic(self, instance_file, capsys):
        assert main(["solve", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "guarantee" in out

    def test_solve_with_gantt(self, instance_file, capsys):
        assert main(["solve", str(instance_file), "--gantt"]) == 0
        assert "M0" in capsys.readouterr().out

    def test_solve_algorithm_choice(self, instance_file, capsys):
        assert (
            main(["solve", str(instance_file), "-a", "five_thirds"]) == 0
        )
        assert "five_thirds" in capsys.readouterr().out

    def test_solve_writes_schedule(self, instance_file, tmp_path, capsys):
        out = tmp_path / "schedule.json"
        assert (
            main(["solve", str(instance_file), "-o", str(out)]) == 0
        )
        data = json.loads(out.read_text())
        assert data["placements"]

    def test_unknown_algorithm_rejected(self, instance_file):
        with pytest.raises(SystemExit):
            main(["solve", str(instance_file), "-a", "bogus"])


class TestAudit:
    def test_audit_table(self, instance_file, capsys):
        assert main(["audit", str(instance_file)]) == 0
        out = capsys.readouterr().out
        for name in ("five_thirds", "three_halves", "merge_lpt"):
            assert name in out

    def test_audit_subset(self, instance_file, capsys):
        assert (
            main(
                ["audit", str(instance_file), "--algorithms", "merge_lpt"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "merge_lpt" in out
        assert "five_thirds" not in out


class TestSolveValidation:
    def test_machine_mismatch_is_validated_with_warning(
        self, instance_file, fake_algorithm, capsys
    ):
        """Schedules on a different machine count used to skip validation
        silently; now they are validated against their own machine count
        and a warning is printed."""

        def augmented(inst, **kwargs):
            return ScheduleResult(
                schedule=_sequential_schedule(inst, inst.num_machines + 1),
                lower_bound=1,
                algorithm="_augmented_ok",
            )

        fake_algorithm("_augmented_ok", augmented)
        assert main(["solve", str(instance_file), "-a", "_augmented_ok"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err and "4 machines" in captured.err
        assert "validity : valid" in captured.out

    def test_invalid_mismatched_schedule_is_caught(
        self, instance_file, fake_algorithm, capsys
    ):
        """Regression: an *invalid* schedule with a foreign machine count
        must be reported, not silently waved through."""

        def bad(inst, **kwargs):
            return ScheduleResult(
                schedule=_overlapping_schedule(inst, inst.num_machines + 1),
                lower_bound=1,
                algorithm="_augmented_bad",
            )

        fake_algorithm("_augmented_bad", bad)
        assert main(["solve", str(instance_file), "-a", "_augmented_bad"]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestAuditResilience:
    def test_erroring_algorithm_reported_not_fatal(
        self, instance_file, fake_algorithm, capsys
    ):
        def exploding(inst, **kwargs):
            raise RuntimeError("boom")

        fake_algorithm("_exploding", exploding)
        assert (
            main(
                [
                    "audit",
                    str(instance_file),
                    "--algorithms",
                    "_exploding",
                    "merge_lpt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ERROR" in out and "boom" in out
        assert "merge_lpt" in out

    def test_invalid_schedule_reported_not_fatal(
        self, instance_file, fake_algorithm, capsys
    ):
        """Regression for the dead ``ok = "valid"`` variable: an invalid
        schedule used to raise and abort the audit mid-table."""

        def bad(inst, **kwargs):
            return ScheduleResult(
                schedule=_overlapping_schedule(inst, inst.num_machines),
                lower_bound=1,
                algorithm="_invalid",
            )

        fake_algorithm("_invalid", bad)
        assert (
            main(
                [
                    "audit",
                    str(instance_file),
                    "--algorithms",
                    "_invalid",
                    "merge_lpt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "invalid" in out
        assert "merge_lpt" in out  # the audit completed

    def test_valid_column_present(self, instance_file, capsys):
        assert main(["audit", str(instance_file)]) == 0
        assert "valid" in capsys.readouterr().out


class TestSweep:
    def test_sweep_writes_jsonl_and_caches(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        argv = [
            "sweep",
            "--families",
            "uniform",
            "--machines",
            "2",
            "3",
            "--sizes",
            "6",
            "--seeds",
            "0",
            "1",
            "-a",
            "three_halves",
            "merge_lpt",
            "--quiet",
            "-o",
            str(out),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "8 executed, 0 cached" in first
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert len(records) == 8
        assert all(rec["status"] == "ok" and rec["valid"] for rec in records)

        assert main(argv) == 0
        assert "0 executed, 8 cached" in capsys.readouterr().out
        # Cached rerun appended nothing.
        assert len(out.read_text().splitlines()) == 8

    def test_sweep_from_instance_directory(self, tmp_path, capsys):
        for seed in (0, 1):
            inst = generate("uniform", 2, 5, seed)
            (tmp_path / f"inst{seed}.json").write_text(
                json.dumps(inst.to_dict())
            )
        out = tmp_path / "results.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--instances-dir",
                    str(tmp_path),
                    "-a",
                    "merge_lpt",
                    "--quiet",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        assert len(out.read_text().splitlines()) == 2

    def test_sweep_error_exit_code_and_failure_summary(
        self, tmp_path, fake_algorithm, capsys
    ):
        def exploding(inst, **kwargs):
            raise RuntimeError("boom")

        fake_algorithm("_exploding", exploding)
        # argparse restricts -a to registered algorithms, so the fake
        # name is accepted only because it is registered right now.
        out = tmp_path / "results.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--families",
                    "uniform",
                    "--machines",
                    "2",
                    "-a",
                    "_exploding",
                    "--quiet",
                    "-o",
                    str(out),
                ]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "1 error(s)" in captured.out
        # Per-algorithm failure summary lands on stderr.
        assert "_exploding: 1 cell(s) failed" in captured.err
        assert "boom" in captured.err

    def test_sweep_keep_going_exits_zero(
        self, tmp_path, fake_algorithm, capsys
    ):
        def exploding(inst, **kwargs):
            raise RuntimeError("boom")

        fake_algorithm("_exploding2", exploding)
        assert (
            main(
                [
                    "sweep",
                    "--families",
                    "uniform",
                    "--machines",
                    "2",
                    "-a",
                    "_exploding2",
                    "--keep-going",
                    "--quiet",
                    "-o",
                    str(tmp_path / "results.jsonl"),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "--keep-going" in captured.err

    def test_sweep_sharded_backend(self, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        argv = [
            "sweep",
            "--families",
            "uniform",
            "--machines",
            "2",
            "--seeds",
            "0",
            "1",
            "-a",
            "merge_lpt",
            "--backend",
            "sharded",
            "--shards",
            "2",
            "--quiet",
            "-o",
            str(out),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "backend=sharded" in first
        assert len(out.read_text().splitlines()) == 2
        # Cached re-run works across the same backend flag.
        assert main(argv) == 0
        assert "0 executed, 2 cached" in capsys.readouterr().out


class TestSweepArgumentValidation:
    """Regression: bad numeric flags used to reach the backends and die
    with opaque tracebacks; they must exit 2 at the parser."""

    @pytest.mark.parametrize(
        "flags, message",
        [
            (["--shards", "0"], "must be a positive integer"),
            (["--retry-limit", "-1"], "must be a non-negative integer"),
            (["--prefetch-window", "0"], "must be a positive integer"),
        ],
    )
    def test_bad_values_exit_2_with_clear_error(
        self, flags, message, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--quiet", *flags])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert message in err
        assert flags[0] in err

    @pytest.mark.parametrize(
        "flags",
        [["--shards", "x"], ["--retry-limit", "no"], ["--prefetch-window", ""]],
    )
    def test_non_integers_exit_2(self, flags, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--quiet", *flags])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "uniform", "-m", "2", "--size", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_machines"] == 2

    def test_generate_to_file_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        assert (
            main(
                [
                    "generate",
                    "big_jobs",
                    "-m",
                    "3",
                    "--size",
                    "6",
                    "--seed",
                    "1",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        # the generated file round-trips through solve
        assert main(["solve", str(out)]) == 0


class TestFiguresAndDemo:
    def test_figures_to_directory(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures", "--out", str(out)]) == 0
        names = {p.name for p in out.iterdir()}
        assert names == {f"fig{i}.txt" for i in range(1, 7)}

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "three_halves" in out and "exact" in out
