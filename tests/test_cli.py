"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads import generate


@pytest.fixture
def instance_file(tmp_path):
    inst = generate("uniform", 3, 6, seed=0)
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(inst.to_dict()))
    return path


class TestSolve:
    def test_solve_basic(self, instance_file, capsys):
        assert main(["solve", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "guarantee" in out

    def test_solve_with_gantt(self, instance_file, capsys):
        assert main(["solve", str(instance_file), "--gantt"]) == 0
        assert "M0" in capsys.readouterr().out

    def test_solve_algorithm_choice(self, instance_file, capsys):
        assert (
            main(["solve", str(instance_file), "-a", "five_thirds"]) == 0
        )
        assert "five_thirds" in capsys.readouterr().out

    def test_solve_writes_schedule(self, instance_file, tmp_path, capsys):
        out = tmp_path / "schedule.json"
        assert (
            main(["solve", str(instance_file), "-o", str(out)]) == 0
        )
        data = json.loads(out.read_text())
        assert data["placements"]

    def test_unknown_algorithm_rejected(self, instance_file):
        with pytest.raises(SystemExit):
            main(["solve", str(instance_file), "-a", "bogus"])


class TestAudit:
    def test_audit_table(self, instance_file, capsys):
        assert main(["audit", str(instance_file)]) == 0
        out = capsys.readouterr().out
        for name in ("five_thirds", "three_halves", "merge_lpt"):
            assert name in out

    def test_audit_subset(self, instance_file, capsys):
        assert (
            main(
                ["audit", str(instance_file), "--algorithms", "merge_lpt"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "merge_lpt" in out
        assert "five_thirds" not in out


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "uniform", "-m", "2", "--size", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_machines"] == 2

    def test_generate_to_file_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        assert (
            main(
                [
                    "generate",
                    "big_jobs",
                    "-m",
                    "3",
                    "--size",
                    "6",
                    "--seed",
                    "1",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        # the generated file round-trips through solve
        assert main(["solve", str(out)]) == 0


class TestFiguresAndDemo:
    def test_figures_to_directory(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures", "--out", str(out)]) == 0
        names = {p.name for p in out.iterdir()}
        assert names == {f"fig{i}.txt" for i in range(1, 7)}

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "three_halves" in out and "exact" in out
