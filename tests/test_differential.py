"""Cross-algorithm differential invariants.

One shared hypothesis instance corpus is run through *every* algorithm in
the registry, asserting the contract every solver must honor:

* the schedule passes :func:`repro.core.validate.validate_schedule`
  (against :func:`validation_instance`, so resource-augmented schedules
  are validated on their own machine count);
* the makespan respects the instance lower bound ``basic_T`` and the
  solver's own ``lower_bound`` whenever the schedule uses the instance's
  machines (augmented schedules may legitimately beat the ``m``-machine
  bound);
* a claimed ``guarantee`` (when not ``None``) actually holds;
* ``Schedule.to_dict``/``from_dict`` round-trips the result exactly.

No single-algorithm test sees these regressions: a solver whose bound
drifts, whose serialization loses a field, or whose schedule silently
violates a class constraint fails here even if its own unit tests still
pass.  Every registry entry must be covered — the coverage test fails
when a newly registered algorithm is not added to a corpus group.

The whole corpus runs under **both kernel families**: every test is
parametrized over ``KERNELS`` and forces the requested family through
the ``REPRO_KERNEL`` default (:func:`tests.equivalence.forced_kernel`),
so the structure-of-arrays kernel honors the same contract on the same
instances — including solvers with no ``kernel=`` parameter of their
own whose subroutines resolve the kernel internally.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import solve
from repro.algorithms.registry import algorithm_names
from repro.core.bounds import basic_T
from repro.core.errors import InfeasibleError, PreconditionError
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validate import validate_schedule, validation_instance
from tests.equivalence import forced_kernel
from tests.strategies import instances, tiny_instances

#: Both dispatch-kernel families; the full differential contract holds
#: identically under each.
KERNELS = ("object", "array")

#: Polynomial-time algorithms: safe on the full random corpus.
FAST_ALGORITHMS = (
    "class_greedy",
    "five_thirds",
    "list_lpt",
    "merge_lpt",
    "no_huge",
    "three_halves",
)

#: Exponential/heavyweight solvers: restricted to the tiny corpus.
EXPENSIVE_ALGORITHMS = ("eptas", "exact", "exact_bb", "exact_milp")

#: Raising is an acceptable outcome only for declared preconditions
#: (e.g. ``no_huge`` outside its job-size regime) or proven
#: infeasibility — never for arbitrary errors.
ALLOWED_ERRORS = (PreconditionError, InfeasibleError)


def test_every_registered_algorithm_is_covered():
    covered = set(FAST_ALGORITHMS) | set(EXPENSIVE_ALGORITHMS)
    assert covered == set(algorithm_names()), (
        "algorithm registry and differential corpus groups diverged"
    )


def check_contract(
    inst: Instance, algorithm: str, kernel: str = "object"
) -> None:
    try:
        with forced_kernel(kernel):
            result = solve(inst, algorithm=algorithm)
    except ALLOWED_ERRORS:
        return

    schedule = result.schedule
    target = validation_instance(inst, schedule)
    validate_schedule(target, schedule)

    # Every job is scheduled exactly once.
    assert set(schedule.placements) == {job.id for job in inst.jobs}

    if schedule.num_machines == inst.num_machines:
        assert schedule.makespan >= basic_T(inst)
        assert schedule.makespan >= result.lower_bound
    assert result.lower_bound >= 0
    if inst.num_jobs:
        assert result.bound_ratio() >= 1

    if result.guarantee is not None:
        assert result.within_guarantee(), (
            f"{algorithm} violated its claimed guarantee "
            f"{result.guarantee}: makespan {result.makespan}, "
            f"bound {result.lower_bound}"
        )

    # Serialization round-trip preserves the schedule bit for bit.
    data = schedule.to_dict()
    again = Schedule.from_dict(data)
    assert again.to_dict() == data
    assert again.makespan == schedule.makespan
    assert again.num_machines == schedule.num_machines

    # The instance itself round-trips too (the sweep runner relies on
    # shipping instances through JSON).
    assert Instance.from_dict(inst.to_dict()) == inst


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@given(inst=instances())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.differing_executors],
)
def test_differential_fast(algorithm, kernel, inst):
    check_contract(inst, algorithm, kernel)


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("algorithm", EXPENSIVE_ALGORITHMS)
@given(inst=tiny_instances())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.differing_executors],
)
def test_differential_expensive(algorithm, kernel, inst):
    check_contract(inst, algorithm, kernel)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "algorithm", FAST_ALGORITHMS + EXPENSIVE_ALGORITHMS
)
def test_differential_empty_instance(algorithm, kernel):
    check_contract(Instance([], 3), algorithm, kernel)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
def test_differential_single_machine(algorithm, kernel):
    # m = 1: every valid schedule is a permutation; makespan must equal
    # the total size for any work-conserving-or-not schedule ≥ p(J).
    inst = Instance.from_class_sizes([[4, 2], [3], [5, 1]], 1)
    try:
        with forced_kernel(kernel):
            result = solve(inst, algorithm=algorithm)
    except ALLOWED_ERRORS:
        return
    check_contract(inst, algorithm, kernel)
    assert result.schedule.makespan >= inst.total_size


# --------------------------------------------------------------------- #
# Adversarial corpus: deterministic shapes that historically break
# schedulers — run through every fast algorithm, and through both the
# kernel and the preserved reference paths of the approximation
# algorithms with their guarantees asserted per cell.
# --------------------------------------------------------------------- #
def _adversarial_corpus():
    from repro.workloads import generate, mh_stress_machines

    return {
        # One class dominates the load: class-sequentiality binds, and
        # the busy index carries almost every placement.
        "one_giant_class": Instance.from_class_sizes(
            [[7] * 40] + [[2, 3]] * 6, 4
        ),
        # Degenerate sizes: every tie-break rule is exercised at once.
        "all_unit_jobs": Instance.from_class_sizes(
            [[1] * 10 for _ in range(12)], 5
        ),
        # m = 1: scheduling collapses to a permutation.
        "single_machine": Instance.from_class_sizes(
            [[4, 2], [3], [5, 1], [2, 2]], 1
        ),
        # |C| ≫ m: maximal machine reuse, long per-machine chains.
        "classes_much_greater_than_m": Instance.from_class_sizes(
            [[(i % 5) + 1] for i in range(80)], 3
        ),
        # Every job just over T/2: CB+/CB machinery everywhere.
        "all_big_jobs": Instance.from_class_sizes(
            [[11] for _ in range(9)] + [[3, 3]] * 2, 4
        ),
        # The M̄H-pairing stress shape at test scale.
        "mh_stress_small": generate(
            "mh_stress", mh_stress_machines(60), 60, 2
        ),
    }


ADVERSARIAL_CORPUS = _adversarial_corpus()

#: The PR-4 kernel ports with a proven guarantee to assert per cell.
APPROX_WITH_GUARANTEE = ("five_thirds", "three_halves", "no_huge")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@pytest.mark.parametrize("shape", sorted(ADVERSARIAL_CORPUS))
def test_differential_adversarial_shapes(shape, algorithm, kernel):
    check_contract(ADVERSARIAL_CORPUS[shape], algorithm, kernel)


@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@pytest.mark.parametrize("shape", sorted(ADVERSARIAL_CORPUS))
def test_traced_counters_match_step_shims(shape, algorithm):
    """The obs-promoted kernel counters equal the counting-shim
    counters bit for bit, identically under both kernel families."""
    from tests.equivalence import assert_traced_counters_match

    assert_traced_counters_match(ADVERSARIAL_CORPUS[shape], algorithm)


@pytest.mark.parametrize("impl", KERNELS)
@pytest.mark.parametrize("algorithm", APPROX_WITH_GUARANTEE)
@pytest.mark.parametrize("shape", sorted(ADVERSARIAL_CORPUS))
def test_adversarial_guarantees_on_kernel_and_reference(
    shape, algorithm, impl
):
    """On every adversarial cell, the kernel (each family) and the
    preserved reference make identical decisions and both honor the
    claimed guarantee."""
    from fractions import Fraction

    from tests.equivalence import (
        EQUIVALENCE_PAIRS,
        assert_same_outcome,
        run_and_capture,
    )

    inst = ADVERSARIAL_CORPUS[shape]
    kernel = run_and_capture(
        lambda i: solve(i, algorithm=algorithm, kernel=impl), inst
    )
    reference = run_and_capture(EQUIVALENCE_PAIRS[algorithm], inst)
    assert_same_outcome(kernel, reference, context=f"{algorithm}/{shape}")
    if kernel.raised:
        # Raising is acceptable only for declared preconditions.
        assert kernel.error == "PreconditionError"
        return
    for result in (kernel.result, reference.result):
        assert result.guarantee is not None
        assert result.makespan <= (
            result.guarantee * Fraction(result.lower_bound)
        ), f"{algorithm} violated its guarantee on {shape}"


def test_adversarial_reservation_conflict_rejected_by_both_kernels():
    """A conflicting reservation sequence — the shape the split lemmas
    promise never happens, i.e. an algorithm bug — is rejected by both
    kernel families with the same error and the same surviving state."""
    from repro.core.arraykernel import ArrayClassReservations
    from repro.core.dispatch import ClassReservations
    from repro.core.errors import InvalidScheduleError

    def drive(cls):
        res = cls((1, 2))
        res.reserve(1, 0, 7)
        res.reserve(2, 0, 7)  # other class: no cross-class conflict
        res.reserve(1, 10, 20)
        res.reserve(1, 15, 25)  # queued conflict inside class 1
        with pytest.raises(InvalidScheduleError):
            res.flush()
        return res.of(2).intervals()

    assert drive(ClassReservations) == drive(ArrayClassReservations)
