"""Cross-algorithm differential invariants.

One shared hypothesis instance corpus is run through *every* algorithm in
the registry, asserting the contract every solver must honor:

* the schedule passes :func:`repro.core.validate.validate_schedule`
  (against :func:`validation_instance`, so resource-augmented schedules
  are validated on their own machine count);
* the makespan respects the instance lower bound ``basic_T`` and the
  solver's own ``lower_bound`` whenever the schedule uses the instance's
  machines (augmented schedules may legitimately beat the ``m``-machine
  bound);
* a claimed ``guarantee`` (when not ``None``) actually holds;
* ``Schedule.to_dict``/``from_dict`` round-trips the result exactly.

No single-algorithm test sees these regressions: a solver whose bound
drifts, whose serialization loses a field, or whose schedule silently
violates a class constraint fails here even if its own unit tests still
pass.  Every registry entry must be covered — the coverage test fails
when a newly registered algorithm is not added to a corpus group.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import solve
from repro.algorithms.registry import algorithm_names
from repro.core.bounds import basic_T
from repro.core.errors import InfeasibleError, PreconditionError
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.core.validate import validate_schedule, validation_instance
from tests.strategies import instances, tiny_instances

#: Polynomial-time algorithms: safe on the full random corpus.
FAST_ALGORITHMS = (
    "class_greedy",
    "five_thirds",
    "list_lpt",
    "merge_lpt",
    "no_huge",
    "three_halves",
)

#: Exponential/heavyweight solvers: restricted to the tiny corpus.
EXPENSIVE_ALGORITHMS = ("eptas", "exact", "exact_bb", "exact_milp")

#: Raising is an acceptable outcome only for declared preconditions
#: (e.g. ``no_huge`` outside its job-size regime) or proven
#: infeasibility — never for arbitrary errors.
ALLOWED_ERRORS = (PreconditionError, InfeasibleError)


def test_every_registered_algorithm_is_covered():
    covered = set(FAST_ALGORITHMS) | set(EXPENSIVE_ALGORITHMS)
    assert covered == set(algorithm_names()), (
        "algorithm registry and differential corpus groups diverged"
    )


def check_contract(inst: Instance, algorithm: str) -> None:
    try:
        result = solve(inst, algorithm=algorithm)
    except ALLOWED_ERRORS:
        return

    schedule = result.schedule
    target = validation_instance(inst, schedule)
    validate_schedule(target, schedule)

    # Every job is scheduled exactly once.
    assert set(schedule.placements) == {job.id for job in inst.jobs}

    if schedule.num_machines == inst.num_machines:
        assert schedule.makespan >= basic_T(inst)
        assert schedule.makespan >= result.lower_bound
    assert result.lower_bound >= 0
    if inst.num_jobs:
        assert result.bound_ratio() >= 1

    if result.guarantee is not None:
        assert result.within_guarantee(), (
            f"{algorithm} violated its claimed guarantee "
            f"{result.guarantee}: makespan {result.makespan}, "
            f"bound {result.lower_bound}"
        )

    # Serialization round-trip preserves the schedule bit for bit.
    data = schedule.to_dict()
    again = Schedule.from_dict(data)
    assert again.to_dict() == data
    assert again.makespan == schedule.makespan
    assert again.num_machines == schedule.num_machines

    # The instance itself round-trips too (the sweep runner relies on
    # shipping instances through JSON).
    assert Instance.from_dict(inst.to_dict()) == inst


@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
@given(inst=instances())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.differing_executors],
)
def test_differential_fast(algorithm, inst):
    check_contract(inst, algorithm)


@pytest.mark.slow
@pytest.mark.parametrize("algorithm", EXPENSIVE_ALGORITHMS)
@given(inst=tiny_instances())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.differing_executors],
)
def test_differential_expensive(algorithm, inst):
    check_contract(inst, algorithm)


@pytest.mark.parametrize(
    "algorithm", FAST_ALGORITHMS + EXPENSIVE_ALGORITHMS
)
def test_differential_empty_instance(algorithm):
    check_contract(Instance([], 3), algorithm)


@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
def test_differential_single_machine(algorithm):
    # m = 1: every valid schedule is a permutation; makespan must equal
    # the total size for any work-conserving-or-not schedule ≥ p(J).
    inst = Instance.from_class_sizes([[4, 2], [3], [5, 1]], 1)
    try:
        result = solve(inst, algorithm=algorithm)
    except ALLOWED_ERRORS:
        return
    check_contract(inst, algorithm)
    assert result.schedule.makespan >= inst.total_size
