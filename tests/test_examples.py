"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

#: Examples that solve large instances end to end (≫ 10 s each) — run
#: in the slow CI tier.
HEAVY_EXAMPLES = {"photolithography_fab.py"}


@pytest.mark.parametrize(
    "script",
    [
        pytest.param(
            path,
            marks=[pytest.mark.slow] if path.name in HEAVY_EXAMPLES else [],
        )
        for path in EXAMPLES
    ],
    ids=lambda p: p.name,
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3
