"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    FAMILIES,
    family_names,
    generate,
    mh_stress_machines,
    packed_small_machines,
    photolithography_shift,
    satellite_downlink,
    staffing_day,
)


class TestRandomFamilies:
    @pytest.mark.parametrize("family", family_names())
    def test_family_generates_valid_instances(self, family):
        inst = generate(family, m=3, size=8, seed=0)
        assert inst.num_jobs > 0
        assert inst.num_classes > inst.num_machines  # paper's assumption
        assert all(j.size >= 1 for j in inst.jobs)

    @pytest.mark.parametrize("family", family_names())
    def test_deterministic(self, family):
        a = generate(family, m=3, size=8, seed=7)
        b = generate(family, m=3, size=8, seed=7)
        assert a == b

    @pytest.mark.parametrize("family", family_names())
    def test_seed_changes_instance(self, family):
        a = generate(family, m=3, size=8, seed=1)
        b = generate(family, m=3, size=8, seed=2)
        assert a != b

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="available"):
            generate("bogus", 2, 5)

    def test_all_families_schedulable(self):
        from repro import solve, validate_schedule

        for family in family_names():
            inst = generate(family, m=4, size=9, seed=3)
            result = solve(inst, algorithm="three_halves")
            validate_schedule(inst, result.schedule)
            assert result.within_guarantee()


class TestStressFamilies:
    """The approx-suite stress shapes really hit their target regimes."""

    def test_mh_stress_opens_many_mh_machines(self):
        from repro.core.bounds import lemma9_T
        from repro.core.classify import classify_classes

        size = 120
        inst = generate("mh_stress", mh_stress_machines(size), size, 0)
        T = lemma9_T(inst)
        part = classify_classes(inst, T)
        # Many CH classes with load < T (the open M̄H machines) and many
        # mid non-CB classes for step 4 to pair them with.
        assert len(part.ch) >= size // 4
        assert len(part.mid - part.cb) >= size // 4
        light_ch = sum(
            1 for cid in part.ch if inst.class_size(cid) < T
        )
        assert light_ch >= size // 4

    def test_mh_stress_drives_step4(self):
        from repro import solve, validate_schedule

        size = 120
        inst = generate("mh_stress", mh_stress_machines(size), size, 0)
        result = solve(inst, algorithm="three_halves")
        validate_schedule(inst, result.schedule)
        assert result.within_guarantee()
        step4 = [
            s
            for s in result.stats["steps"]
            if s[0] == "step" and s[1].startswith("step4(")
        ]
        assert len(step4) >= size // 10

    def test_packed_small_is_no_huge_eligible_and_deep(self):
        from repro import solve, validate_schedule
        from repro.core.bounds import basic_T
        from repro.core.classify import classify_classes

        size = 36
        inst = generate("packed_small", packed_small_machines(size), size, 1)
        part = classify_classes(inst, basic_T(inst))
        assert not part.ch and not part.cb
        # All three category buckets populated.
        assert part.ge34 and part.mid and part.le_half
        result = solve(inst, algorithm="no_huge")
        validate_schedule(inst, result.schedule)
        assert result.within_guarantee()
        steps = [s[1] for s in result.stats["steps"] if s[0] == "step"]
        assert any(s.startswith("step2(") for s in steps)
        assert any(s.startswith("step3(") for s in steps)


class TestApplications:
    def test_satellite(self):
        inst = satellite_downlink(num_satellites=8, num_channels=3, seed=1)
        assert inst.num_classes == 8
        assert inst.num_machines == 3
        assert inst.class_labels[0] == "SAT-00"

    def test_photolithography(self):
        inst = photolithography_shift(
            num_reticles=10, num_steppers=4, seed=1
        )
        assert inst.num_classes == 10
        assert inst.num_machines == 4

    def test_staffing(self):
        inst = staffing_day(num_specialists=7, num_workstations=3, seed=1)
        assert inst.num_classes == 7

    def test_applications_schedulable(self):
        from repro import solve, validate_schedule

        for inst in (
            satellite_downlink(num_satellites=6, num_channels=2, seed=0),
            photolithography_shift(num_reticles=8, num_steppers=3, seed=0),
            staffing_day(num_specialists=6, num_workstations=2, seed=0),
        ):
            for algorithm in ("five_thirds", "three_halves"):
                result = solve(inst, algorithm=algorithm)
                validate_schedule(inst, result.schedule)
                assert result.within_guarantee()
